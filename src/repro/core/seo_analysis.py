"""SEO-technique classification on abused sites (Section 5.2).

The paper finds 75% of abusive HTML contains some form of blackhat
SEO, with doorway pages dominating (62.13%), keyword stuffing on 41%
of pages, the Japanese Keyword Hack + private link networks at 7.17%,
and clickjacking on adult pages.  This module crawls a sample of pages
from each abused site (through the same HTTP client the monitor uses,
with both crawler and browser user agents so cloaking is observable)
and classifies the techniques.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from datetime import datetime
from typing import Dict, List, Optional, Sequence, Set, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.core.detection import AbuseDataset
from repro.core.monitoring import SnapshotStore
from repro.web.client import HttpClient
from repro.web.html import HtmlDocument, parse_html

CRAWLER_UA = "Mozilla/5.0 (compatible; Googlebot/2.1)"
BROWSER_UA = "Mozilla/5.0 (Windows NT 10.0) Chrome/100.0"

#: How many sitemap-sampled paths to crawl per abused site.
PAGES_PER_SITE = 4


@dataclass
class SiteSeoProfile:
    """Techniques observed on one abused FQDN."""

    fqdn: str
    pages_examined: int = 0
    pages_with_meta_keywords: int = 0
    doorway: bool = False
    link_network: bool = False
    japanese_keyword_hack: bool = False
    cloaking: bool = False
    clickjacking: bool = False
    #: Thousands of generated pages advertised via sitemap — the
    #: private-link-network / doorway-farm infrastructure of Figure 6.
    bulk_upload: bool = False
    referral_codes: Set[str] = field(default_factory=set)
    meta_keyword_counts: Counter = field(default_factory=Counter)

    @property
    def any_seo(self) -> bool:
        return any(
            (self.doorway, self.link_network, self.japanese_keyword_hack,
             self.cloaking, self.bulk_upload, self.pages_with_meta_keywords > 0)
        )


@dataclass
class SeoReport:
    """Aggregate SEO statistics across the abuse dataset."""

    profiles: List[SiteSeoProfile]
    total_pages_examined: int
    pages_with_meta_keywords: int
    top_meta_keywords: List[Tuple[str, int]]

    @property
    def total_sites(self) -> int:
        return len(self.profiles)

    @property
    def seo_share(self) -> float:
        """Share of abused sites showing any SEO technique (~75%)."""
        if not self.profiles:
            return 0.0
        return sum(1 for p in self.profiles if p.any_seo) / len(self.profiles)

    @property
    def doorway_share(self) -> float:
        """Share of SEO sites using doorway pages (~62%)."""
        seo = [p for p in self.profiles if p.any_seo]
        if not seo:
            return 0.0
        return sum(1 for p in seo if p.doorway) / len(seo)

    @property
    def jkh_share(self) -> float:
        """Share of SEO sites using the Japanese Keyword Hack (~7%)."""
        seo = [p for p in self.profiles if p.any_seo]
        if not seo:
            return 0.0
        return sum(1 for p in seo if p.japanese_keyword_hack or p.link_network) / len(seo)

    @property
    def keyword_stuffing_page_rate(self) -> float:
        """Share of examined pages with a keywords meta tag (~41%)."""
        if not self.total_pages_examined:
            return 0.0
        return self.pages_with_meta_keywords / self.total_pages_examined

    @property
    def clickjacking_sites(self) -> int:
        return sum(1 for p in self.profiles if p.clickjacking)

    @property
    def referral_codes(self) -> Set[str]:
        codes: Set[str] = set()
        for profile in self.profiles:
            codes |= profile.referral_codes
        return codes


def analyze_seo(
    dataset: AbuseDataset,
    store: SnapshotStore,
    client: HttpClient,
    at: datetime,
    pages_per_site: int = PAGES_PER_SITE,
) -> SeoReport:
    """Classify SEO techniques for every abused FQDN.

    Live sites are crawled (a handful of sitemap-sampled paths, with
    crawler and browser user agents); sites already remediated are
    classified from their stored abusive index features.
    """
    profiles: List[SiteSeoProfile] = []
    total_pages = 0
    stuffed_pages = 0
    meta_counter: Counter = Counter()
    for record in dataset.records():
        profile = SiteSeoProfile(fqdn=record.fqdn)
        profile.bulk_upload = record.max_sitemap_count >= 300
        _classify_from_store(profile, store, record, meta_counter)
        if record.currently_abused:
            _classify_from_crawl(profile, client, at, pages_per_site, meta_counter)
        total_pages += profile.pages_examined
        stuffed_pages += profile.pages_with_meta_keywords
        profiles.append(profile)
    return SeoReport(
        profiles=profiles,
        total_pages_examined=total_pages,
        pages_with_meta_keywords=stuffed_pages,
        top_meta_keywords=meta_counter.most_common(12),
    )


# -- classification internals ----------------------------------------------------------


def _referral_code(url: str) -> Optional[str]:
    """The value of the actual ``ref`` query parameter, or ``None``.

    Parsed from the URL's query string rather than substring-matched:
    ``url.split("ref=")[-1]`` splits on the *last* ``ref=`` anywhere in
    the URL, so ``?ref=abc&href=/x`` yielded ``/x`` and parameters like
    ``pref=``/``href=`` could poison codes the old ``?ref=``/``&ref=``
    guard never matched.  Empty codes (``?ref=``) are treated as absent.
    """
    query = urlsplit(url).query
    if not query or "ref=" not in query:
        return None
    values = parse_qs(query).get("ref")
    return values[0] if values else None


def _is_internal_link(href: str, fqdn: str) -> bool:
    """Whether an anchor points back into ``fqdn``'s own site.

    Absolute URLs count when they name the FQDN; scheme-less relative
    hrefs (``/casino/7.html``, ``page2.html``) are same-site by
    construction — doorway farms emitting root-relative links must not
    evade the ``link_network`` classification.
    """
    if not href or href.startswith("#"):
        return False
    if href.startswith("//"):
        return fqdn in href
    split = urlsplit(href)
    if split.scheme in ("http", "https"):
        return fqdn in href
    if split.scheme:  # mailto:, javascript:, tel:, ...
        return False
    return True


def _classify_from_store(
    profile: SiteSeoProfile, store: SnapshotStore, record, meta_counter: Counter
) -> None:
    episodes = record.episodes
    for state in store.history(record.fqdn):
        features = state.features
        if not features.reachable:
            continue
        # Only the states observed inside an abuse episode are abusive
        # samples; the victim's pre-hijack content is not.
        in_episode = any(
            episode.started_at <= state.first_seen
            and (episode.ended_at is None or state.first_seen < episode.ended_at)
            for episode in episodes
        )
        if not in_episode:
            continue
        profile.pages_examined += 1
        if features.has_meta_keywords:
            profile.pages_with_meta_keywords += 1
            for keyword in features.meta_keywords:
                meta_counter[keyword] += 1
        if features.onclick_count > 0:
            profile.clickjacking = True
        for url in features.external_urls:
            code = _referral_code(url)
            if code:
                profile.doorway = True
                profile.referral_codes.add(code)
        if features.lang == "ja":
            profile.japanese_keyword_hack = True


def _classify_from_crawl(
    profile: SiteSeoProfile,
    client: HttpClient,
    at: datetime,
    pages_per_site: int,
    meta_counter: Counter,
) -> None:
    latest = client.fetch(
        profile.fqdn, path="/sitemap.xml", at=at,
        headers={"User-Agent": CRAWLER_UA},
    )
    paths: List[str] = []
    if latest.ok:
        for line in latest.response.body.splitlines():
            line = line.strip()
            if line.startswith("<loc>") and "</loc>" in line:
                url = line[len("<loc>"):line.index("</loc>")]
                path = "/" + url.split("/", 3)[-1] if url.count("/") >= 3 else "/"
                if path not in paths and path != "/":
                    paths.append(path)
            if len(paths) >= pages_per_site:
                break
    for path in paths:
        crawler_view = client.fetch(
            profile.fqdn, path=path, at=at, headers={"User-Agent": CRAWLER_UA}
        )
        if not crawler_view.ok:
            continue
        browser_view = client.fetch(
            profile.fqdn, path=path, at=at, headers={"User-Agent": BROWSER_UA}
        )
        if not browser_view.ok or browser_view.response.body != crawler_view.response.body:
            profile.cloaking = True
        document = parse_html(crawler_view.response.body)
        _classify_page(profile, document, meta_counter)


def _classify_page(
    profile: SiteSeoProfile, document: HtmlDocument, meta_counter: Counter
) -> None:
    profile.pages_examined += 1
    if "keywords" in document.meta:
        profile.pages_with_meta_keywords += 1
        for keyword in document.meta_keywords:
            meta_counter[keyword] += 1
    if document.lang == "ja":
        profile.japanese_keyword_hack = True
    if any(link.onclick for link in document.links):
        profile.clickjacking = True
    internal_links = [
        link for link in document.links
        if _is_internal_link(link.href, profile.fqdn)
    ]
    referral_codes = [
        code for code in (_referral_code(link.href) for link in document.links)
        if code
    ]
    if referral_codes:
        profile.doorway = True
        profile.referral_codes.update(referral_codes)
    text_length = len(document.visible_text())
    # Link-network pages exist *only* to link: mostly internal links,
    # no monetized click-through, and next to no content.
    if len(internal_links) >= 4 and not referral_codes and text_length < 300:
        profile.link_network = True


#: Tokens of the maintenance-facade templates.  The paper's Table 1
#: reports these as single "HTML Snippet" entries rather than as loose
#: words, so the tabulation collapses them the same way.
_FACADE_TOKENS = frozenset(
    {"comming", "soon", "sorry", "restore", "working", "maintenance",
     "undergoing", "scheduled", "wartet", "planmäßig", "check", "back",
     "services", "possible", "please"}
)


def table1_index_keywords(
    dataset: AbuseDataset, top: int = 12
) -> List[Tuple[str, int]]:
    """Table 1: most frequent extracted keywords on abusive index pages.

    Facade-template vocabulary is collapsed into one ``HTML Snippet``
    entry per page, matching the paper's presentation (its top-ranked
    "keywords" are template snippets, followed by gambling/adult terms).
    """
    counter: Counter = Counter()
    for record in dataset.records():
        facade_hits = 0
        # Sorted so the counter's insertion order — most_common's
        # tie-break — never leaks set hash order into the table.
        for keyword in sorted(record.keywords):
            tokens = set(keyword.split())
            if tokens & _FACADE_TOKENS:
                facade_hits += 1
            else:
                counter[keyword] += 1
        if facade_hits >= 2:
            counter["HTML Snippet (maintenance template)"] += 1
    return counter.most_common(top)
