"""The liveness-measurement comparison (Section 2).

Prior work inferred "dangling" from transport-level silence.  The paper
re-measures its hijacked-domain dataset three ways — ICMP ping, TCP
80/443, and an HTTP request to the actual FQDN — and finds ICMP
answers for only ~72% of live cloud-hosted domains (overestimating
vulnerability by ~20%) while TCP answers for ~93% (underestimating by
~4% versus HTTP's 89%).  This module reruns that comparison against the
simulated network.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import Iterable, Optional, Sequence

from repro.dns.resolver import Resolver
from repro.net.network import Network
from repro.net.probing import icmp_ping, tcp_probe_any
from repro.web.client import HttpClient


@dataclass
class LivenessReport:
    """Responsiveness rates over one set of FQDNs, by probe method."""

    total: int
    dns_resolved: int
    icmp_responsive: int
    tcp_responsive: int
    http_responsive: int

    @property
    def icmp_rate(self) -> float:
        return self.icmp_responsive / self.total if self.total else 0.0

    @property
    def tcp_rate(self) -> float:
        return self.tcp_responsive / self.total if self.total else 0.0

    @property
    def http_rate(self) -> float:
        return self.http_responsive / self.total if self.total else 0.0

    def rows(self):
        """(method, responsive, rate) rows for the report table."""
        return [
            ("icmp", self.icmp_responsive, self.icmp_rate),
            ("tcp-80/443", self.tcp_responsive, self.tcp_rate),
            ("http-fqdn", self.http_responsive, self.http_rate),
        ]


def compare_liveness(
    fqdns: Sequence[str],
    resolver: Resolver,
    network: Network,
    client: HttpClient,
    at: Optional[datetime] = None,
    tcp_ports: Iterable[int] = (80, 443),
) -> LivenessReport:
    """Probe every FQDN with all three methods and tally responses.

    HTTP responsiveness requires a 2xx from the actual FQDN (traversing
    virtual hosting); ICMP/TCP probe the resolved address only — which
    is precisely why they disagree.
    """
    total = len(fqdns)
    dns_resolved = icmp_ok = tcp_ok = http_ok = 0
    ports = tuple(tcp_ports)
    for fqdn in fqdns:
        resolution = resolver.resolve_a_with_chain(fqdn, at=at)
        if not resolution.ok:
            continue
        dns_resolved += 1
        ip = resolution.addresses[0]
        if icmp_ping(network, ip).responsive:
            icmp_ok += 1
        if tcp_probe_any(network, ip, ports).responsive:
            tcp_ok += 1
        outcome = client.fetch(fqdn, at=at)
        if outcome.ok and outcome.response.ok:
            # A provider 404 for an unrouted host is a TCP-level success
            # but an application-level failure — the 4% gap of Section 2.
            http_ok += 1
    return LivenessReport(
        total=total,
        dns_resolved=dns_resolved,
        icmp_responsive=icmp_ok,
        tcp_responsive=tcp_ok,
        http_responsive=http_ok,
    )
