"""Collection of cloud-pointing FQDNs (Algorithm 1, Section 3.1).

``collect_fqdns`` is a faithful transcription of the paper's
pseudocode: for every candidate FQDN, issue an A query; keep the name
if any CNAME in the chain ends with a known cloud suffix, or any
resolved address falls within published cloud IP ranges.

:class:`FqdnCollector` wraps that into the longitudinal process the
paper ran for three years: seed apex domains, expand to subdomains via
passive DNS, re-run the filter periodically as the feed surfaces new
names, and keep already-admitted names monitored even after their DNS
breaks (that persistence is what lets the monitor see takeovers).
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field
from datetime import datetime
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.dns.names import Name, ends_with_any, normalize_name
from repro.dns.resolver import Resolver
from repro.net.addresses import CidrSet
from repro.sim.clock import month_key


def collect_fqdns(
    fqdns: Iterable[Name],
    cloud_suffixes: Sequence[Name],
    cloud_ips: CidrSet,
    resolver: Resolver,
    at: Optional[datetime] = None,
) -> Set[Name]:
    """Algorithm 1: the subset of ``fqdns`` that points into the cloud."""
    suffixes = tuple(cloud_suffixes)
    selected: Set[Name] = set()
    for fqdn in fqdns:
        result = resolver.resolve_a_with_chain(fqdn, at=at)
        admitted = False
        for cname in result.cname_chain:
            if ends_with_any(cname, suffixes) is not None:
                selected.add(normalize_name(fqdn))
                admitted = True
                break
        if admitted:
            continue
        for address in result.addresses:
            if address in cloud_ips:
                selected.add(normalize_name(fqdn))
                break
    return selected


@dataclass
class CollectorStats:
    """Per-month growth of the monitored set (Figure 1's x-axis)."""

    monthly_monitored: Dict[str, int] = field(default_factory=dict)
    candidates_seen: int = 0

    def record_month(self, at: datetime, monitored: int) -> None:
        self.monthly_monitored[month_key(at)] = monitored


class FqdnCollector:
    """Maintains the growing monitored set over the measurement period."""

    def __init__(
        self,
        resolver: Resolver,
        cloud_suffixes: Sequence[Name],
        cloud_ips: CidrSet,
    ):
        self._resolver = resolver
        self._suffixes = tuple(cloud_suffixes)
        self._cloud_ips = cloud_ips
        self._monitored: Set[Name] = set()
        #: Sorted view of the monitored set, maintained incrementally on
        #: ingest so the weekly sweep never re-sorts the full set.
        self._monitored_sorted: List[Name] = []
        self._rejected: Set[Name] = set()
        self.stats = CollectorStats()

    @property
    def monitored(self) -> Set[Name]:
        """The current monitored set (admitted names are never dropped)."""
        return set(self._monitored)

    @property
    def monitored_sorted(self) -> Sequence[Name]:
        """The monitored set in sorted order, without re-sorting.

        Updated incrementally as names are admitted; equals
        ``sorted(self.monitored)`` at all times.  Treat as read-only —
        the collector owns the underlying list.
        """
        return self._monitored_sorted

    def _admit(self, admitted: Set[Name]) -> None:
        for name in sorted(admitted):
            if name not in self._monitored:
                self._monitored.add(name)
                insort(self._monitored_sorted, name)

    def monitored_count(self) -> int:
        return len(self._monitored)

    def ingest(self, candidates: Iterable[Name], at: datetime) -> int:
        """Run Algorithm 1 over new candidates; returns newly admitted count.

        Names already admitted or already rejected are not re-queried —
        re-evaluation of rejected names happens via :meth:`reconsider`,
        mirroring the paper's periodic feed reprocessing.
        """
        fresh = [
            c for c in (normalize_name(x) for x in candidates)
            if c not in self._monitored and c not in self._rejected
        ]
        self.stats.candidates_seen += len(fresh)
        admitted = collect_fqdns(fresh, self._suffixes, self._cloud_ips, self._resolver, at)
        self._admit(admitted)
        self._rejected |= {c for c in fresh if c not in admitted}
        self.stats.record_month(at, len(self._monitored))
        return len(admitted)

    def reconsider(self, at: datetime, sample: Optional[int] = None) -> int:
        """Re-test previously rejected names (assets move into the cloud)."""
        names = sorted(self._rejected)
        if sample is not None:
            names = names[:sample]
        admitted = collect_fqdns(names, self._suffixes, self._cloud_ips, self._resolver, at)
        self._admit(admitted)
        self._rejected -= admitted
        if admitted:
            self.stats.record_month(at, len(self._monitored))
        return len(admitted)

    def monthly_growth(self) -> List[Tuple[str, int]]:
        """(month, monitored count) series for Figure 1."""
        return sorted(self.stats.monthly_monitored.items())
