"""Resolution-chain reconstruction and dangling-record classification.

Prior work measured the *attack surface*: [18]'s hostingChecker
reconstructs full resolution chains to find hosting-based dangling
domains, [3] counted released cloud IPs still pointed at, [12] started
it all.  This module provides that defender-side apparatus over the
simulated Internet: classify every monitored FQDN's chain into healthy
/ dangling variants, decide whether the dangling form is actually
*hijackable* (the paper's refinement: only freetext resources are), and
survey a whole monitored set.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from datetime import datetime
from typing import List, Optional, Sequence, Tuple

from repro.cloud.specs import NamingPolicy, parse_generated_fqdn
from repro.dns.names import Name
from repro.dns.resolver import ResolutionStatus
from repro.web.client import FetchStatus
from repro.world.internet import Internet


class ChainStatus(enum.Enum):
    """What the resolution chain of one FQDN looks like."""

    HEALTHY = "healthy"
    #: CNAME chain reaches a cloud suffix whose name no longer exists.
    DANGLING_CNAME = "dangling-cname"
    #: Resolves via a provider wildcard but the resource is gone
    #: (S3-style: HTTP answers with the provider 404 fingerprint).
    DANGLING_WILDCARD = "dangling-wildcard"
    #: A record points at an address nothing answers on.
    DANGLING_ADDRESS = "dangling-address"
    #: Name does not resolve and no cloud chain is involved.
    BROKEN = "broken"


@dataclass(frozen=True)
class ChainReport:
    """Classification of one FQDN's chain."""

    fqdn: Name
    status: ChainStatus
    cname_chain: Tuple[str, ...]
    addresses: Tuple[str, ...]
    service_key: str = ""
    provider: str = ""
    resource_name: str = ""
    #: Whether an attacker could take this over *deterministically*
    #: right now (freetext naming + name currently available).
    hijackable: bool = False


def analyze_chain(internet: Internet, fqdn: Name, at: datetime) -> ChainReport:
    """Reconstruct and classify the resolution chain of ``fqdn``."""
    resolution = internet.resolver.resolve_a_with_chain(fqdn, at=at)
    chain = tuple(resolution.cname_chain)
    addresses = tuple(resolution.addresses)
    parsed = None
    for target in chain:
        parsed = parse_generated_fqdn(target)
        if parsed is not None:
            break
    service_key = parsed.spec.key if parsed else ""
    provider = parsed.spec.provider if parsed else ""
    resource_name = parsed.name if parsed else ""

    if resolution.status == ResolutionStatus.NXDOMAIN and parsed is not None:
        return ChainReport(
            fqdn=fqdn, status=ChainStatus.DANGLING_CNAME, cname_chain=chain,
            addresses=addresses, service_key=service_key, provider=provider,
            resource_name=resource_name,
            hijackable=_is_hijackable(internet, parsed, at),
        )
    if not resolution.ok:
        return ChainReport(
            fqdn=fqdn, status=ChainStatus.BROKEN, cname_chain=chain,
            addresses=addresses, service_key=service_key, provider=provider,
        )

    outcome = internet.client.fetch(fqdn, at=at)
    if outcome.status == FetchStatus.CONNECTION_FAILED:
        return ChainReport(
            fqdn=fqdn, status=ChainStatus.DANGLING_ADDRESS, cname_chain=chain,
            addresses=addresses, service_key=service_key, provider=provider,
        )
    if (
        outcome.ok
        and outcome.response.status == 404
        and "X-Provider" in outcome.response.headers
        and parsed is not None
    ):
        return ChainReport(
            fqdn=fqdn, status=ChainStatus.DANGLING_WILDCARD, cname_chain=chain,
            addresses=addresses, service_key=service_key, provider=provider,
            resource_name=resource_name,
            hijackable=_is_hijackable(internet, parsed, at),
        )
    return ChainReport(
        fqdn=fqdn, status=ChainStatus.HEALTHY, cname_chain=chain,
        addresses=addresses, service_key=service_key, provider=provider,
        resource_name=resource_name,
    )


def _is_hijackable(internet: Internet, parsed, at: datetime) -> bool:
    if parsed.spec.naming != NamingPolicy.FREETEXT:
        return False
    provider = internet.catalog.provider(parsed.spec.provider)
    return provider.is_name_available(parsed.spec.key, parsed.name, at)


@dataclass
class AttackSurfaceReport:
    """Survey of a monitored set's dangling exposure."""

    reports: List[ChainReport]
    by_status: Counter = field(default_factory=Counter)
    hijackable: int = 0
    hijackable_by_service: Counter = field(default_factory=Counter)

    @property
    def total(self) -> int:
        return len(self.reports)

    @property
    def dangling_total(self) -> int:
        return (
            self.by_status[ChainStatus.DANGLING_CNAME]
            + self.by_status[ChainStatus.DANGLING_WILDCARD]
            + self.by_status[ChainStatus.DANGLING_ADDRESS]
        )

    def rows(self) -> List[Tuple[str, int]]:
        """(status, count) rows for rendering."""
        return [(status.value, self.by_status.get(status, 0)) for status in ChainStatus]


def survey_attack_surface(
    internet: Internet, fqdns: Sequence[Name], at: datetime
) -> AttackSurfaceReport:
    """Classify every FQDN and aggregate the exposure picture.

    This is the measurement prior work stopped at — counting vulnerable
    domains; the paper's point is that only the ``hijackable`` subset
    (freetext, currently available) is what attackers actually take.
    """
    report = AttackSurfaceReport(reports=[])
    for fqdn in fqdns:
        chain = analyze_chain(internet, fqdn, at)
        report.reports.append(chain)
        report.by_status[chain.status] += 1
        if chain.hijackable:
            report.hijackable += 1
            report.hijackable_by_service[chain.service_key] += 1
    return report
