"""Identifier extraction from abuse pages (Section 6).

Parses the stored abusive snapshots for the four identifier families
the paper extracts from ``href`` attributes and script sources: phone
numbers (WhatsApp ``wa.me`` links — Figure 21 geolocates them by
country code), chat/social contacts, URL-shortener links, and literal
backend IP addresses (Figure 26 maps them to hosting orgs/countries).
"""

from __future__ import annotations

import re
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.attacker.identifiers import phone_country
from repro.core.detection import AbuseDataset
from repro.core.monitoring import SnapshotStore
from repro.dns.names import Name
from repro.intel.shorteners import SHORTENER_DOMAINS
from repro.net.geoip import GeoIPDatabase

_WA_RE = re.compile(r"https?://wa\.me/(\+\d{6,16})")
_SOCIAL_RE = re.compile(
    r"https?://(?:www\.)?(t\.me|instagram\.com|facebook\.com|twitter\.com)/([A-Za-z0-9_.-]+)"
)
_IP_URL_RE = re.compile(r"https?://(\d{1,3}(?:\.\d{1,3}){3})(?::\d+)?(?:/|$)")


@dataclass
class IdentifierMap:
    """identifier -> set of hijacked FQDNs it appeared on."""

    phones: Dict[str, Set[Name]] = field(default_factory=lambda: defaultdict(set))
    socials: Dict[str, Set[Name]] = field(default_factory=lambda: defaultdict(set))
    short_links: Dict[str, Set[Name]] = field(default_factory=lambda: defaultdict(set))
    ips: Dict[str, Set[Name]] = field(default_factory=lambda: defaultdict(set))

    def all_identifiers(self) -> Dict[str, Set[Name]]:
        merged: Dict[str, Set[Name]] = {}
        for bucket in (self.phones, self.socials, self.short_links, self.ips):
            merged.update(bucket)
        return merged

    def kind_of(self, identifier: str) -> str:
        if identifier in self.phones:
            return "phone"
        if identifier in self.socials:
            return "social"
        if identifier in self.short_links:
            return "short-link"
        if identifier in self.ips:
            return "ip"
        raise KeyError(identifier)

    @property
    def unique_counts(self) -> Dict[str, int]:
        return {
            "phones": len(self.phones),
            "socials": len(self.socials),
            "short_links": len(self.short_links),
            "ips": len(self.ips),
        }


def extract_identifiers(dataset: AbuseDataset, store: SnapshotStore) -> IdentifierMap:
    """Scan abusive snapshots of every abused FQDN for identifiers."""
    identifier_map = IdentifierMap()
    shortener_hosts = set(SHORTENER_DOMAINS)
    for record in dataset.records():
        for state in store.history(record.fqdn):
            features = state.features
            if not features.reachable:
                continue
            in_episode = any(
                e.started_at <= state.first_seen
                and (e.ended_at is None or state.first_seen < e.ended_at)
                for e in record.episodes
            )
            if not in_episode:
                continue
            urls = list(features.external_urls) + list(features.script_srcs)
            for url in urls:
                _classify_url(url, record.fqdn, identifier_map, shortener_hosts)
    return identifier_map


def _classify_url(
    url: str, fqdn: Name, identifier_map: IdentifierMap, shortener_hosts: Set[str]
) -> None:
    wa = _WA_RE.match(url)
    if wa:
        identifier_map.phones[wa.group(1)].add(fqdn)
        return
    social = _SOCIAL_RE.match(url)
    if social:
        identifier_map.socials[f"{social.group(1)}/{social.group(2)}"].add(fqdn)
        return
    ip = _IP_URL_RE.match(url)
    if ip:
        identifier_map.ips[ip.group(1)].add(fqdn)
        return
    host = url.split("//", 1)[-1].split("/", 1)[0].lower()
    if host in shortener_hosts:
        identifier_map.short_links[url].add(fqdn)


# -- geographic breakdowns (Figures 21 and 26) -------------------------------------


def phone_geo_distribution(identifier_map: IdentifierMap) -> List[Tuple[str, int]]:
    """Figure 21: unique phone numbers by country of their calling code."""
    counter: Counter = Counter()
    for phone in identifier_map.phones:
        counter[phone_country(phone)] += 1
    return counter.most_common()


def ip_organizations(
    identifier_map: IdentifierMap, geoip: GeoIPDatabase
) -> List[Tuple[str, int]]:
    """Figure 26a: hosting organizations behind referenced IPs."""
    counter: Counter = Counter()
    for ip in identifier_map.ips:
        organization = geoip.organization_of(ip) or "(unknown)"
        counter[organization] += 1
    return counter.most_common()


def ip_countries(
    identifier_map: IdentifierMap, geoip: GeoIPDatabase
) -> List[Tuple[str, int]]:
    """Figure 26b: countries the referenced IPs geolocate to."""
    counter: Counter = Counter()
    for ip in identifier_map.ips:
        counter[geoip.country_of(ip) or "??"] += 1
    return counter.most_common()
