"""Per-subject revision counters layered on the event log.

The sweep re-samples every monitored FQDN weekly, but in a steady world
almost nothing changes week over week — sweep cost should scale with
*churn*, not population.  The :class:`RevisionJournal` gives every
mutation path one place to declare "this subject changed": each
``bump`` increments a monotonic per-subject counter and appends the
subject to an ordered change log.  Consumers take a :meth:`cursor`
(an offset into that log) and later ask :meth:`changed_since` for the
set of subjects that moved — an O(churn) operation, independent of how
many subjects exist.

Subjects are ``(kind, key)`` tuples — e.g. ``("dns", "a.acme.com")``,
``("web", "a.acme.com")``, ``("site", ("azure", "web", "res-1"))`` —
so distinct substrates never collide and the hot lookup path stays a
plain tuple-keyed dict access.

:meth:`publish` unifies revision bumps with the existing
:class:`~repro.sim.events.EventLog`: world-mutation paths that used to
call ``events.record(...)`` directly call ``journal.publish(...)``
instead and get the event *and* the revision bump from one call.
"""

from __future__ import annotations

from datetime import datetime
from typing import Any, Dict, Hashable, List, Optional, Set, Tuple

from repro.sim.events import Event, EventLog

#: A journal subject: ``(kind, key)``.  ``key`` is usually a string
#: (an FQDN, an IP) but may be any hashable (site keys are tuples).
Subject = Tuple[str, Hashable]


class RevisionJournal:
    """Monotonic per-subject revision counters with a change cursor."""

    def __init__(self, events: Optional[EventLog] = None) -> None:
        self._events = events
        self._revisions: Dict[Subject, int] = {}
        #: Append-only log of bumped subjects, in bump order.  A cursor
        #: is an offset into this list; ``changed_since`` is just the
        #: set of the suffix — proportional to churn, not population.
        self._log: List[Subject] = []

    # -- writing ----------------------------------------------------------------

    def bump(self, kind: str, key: Hashable) -> int:
        """Advance ``(kind, key)``'s revision and return the new value."""
        subject = (kind, key)
        revision = self._revisions.get(subject, 0) + 1
        self._revisions[subject] = revision
        self._log.append(subject)
        return revision

    def publish(
        self, at: datetime, event_kind: str, subject: str, **data: Any
    ) -> Optional[Event]:
        """Record an event and bump the matching revision in one step.

        The revision kind is the event kind's first dotted component,
        so ``publish(at, "cloud.release", name)`` records the usual
        ``cloud.release`` event and bumps ``("cloud", name)``.
        """
        self.bump(event_kind.split(".", 1)[0], subject)
        if self._events is None:
            return None
        return self._events.record(at, event_kind, subject, **data)

    @property
    def events(self) -> Optional[EventLog]:
        """The event log this journal publishes into, if any."""
        return self._events

    # -- reading ----------------------------------------------------------------

    def revision(self, kind: str, key: Hashable) -> int:
        """Current revision of ``(kind, key)``; 0 if never bumped."""
        return self._revisions.get((kind, key), 0)

    def revisions_for(self, subjects: Tuple[Subject, ...]) -> Tuple[int, ...]:
        """Current revisions of several subjects at once."""
        get = self._revisions.get
        return tuple(get(subject, 0) for subject in subjects)

    def cursor(self) -> int:
        """An opaque position marking "now" in the change log."""
        return len(self._log)

    def changed_since(self, cursor: int) -> Set[Subject]:
        """Distinct subjects bumped after ``cursor`` was taken."""
        return set(self._log[cursor:])

    def __len__(self) -> int:
        """Total bumps recorded (equals the latest possible cursor)."""
        return len(self._log)
