"""A structured, queryable event log for the simulation.

Subsystems append :class:`Event` records (resource released, record
re-registered, certificate issued, abuse detected, ...).  Analyses and
tests query the log instead of poking at private state, which keeps the
simulation observable the way a real measurement pipeline observes the
Internet: through externally visible events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class Event:
    """One timestamped occurrence in the simulated world.

    Attributes
    ----------
    at:
        Simulated time of the event.
    kind:
        Dotted category string, e.g. ``"cloud.release"`` or
        ``"attacker.takeover"``.
    subject:
        The primary entity involved (an FQDN, a resource name, ...).
    data:
        Free-form payload for analyses.
    """

    at: datetime
    kind: str
    subject: str
    data: Dict[str, Any] = field(default_factory=dict)


class EventLog:
    """Append-only ordered store of :class:`Event` records."""

    def __init__(self) -> None:
        self._events: List[Event] = []

    def record(self, at: datetime, kind: str, subject: str, **data: Any) -> Event:
        """Append and return a new event."""
        event = Event(at=at, kind=kind, subject=subject, data=dict(data))
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def query(
        self,
        kind: Optional[str] = None,
        subject: Optional[str] = None,
        since: Optional[datetime] = None,
        until: Optional[datetime] = None,
        predicate: Optional[Callable[[Event], bool]] = None,
    ) -> List[Event]:
        """Return events matching all the given filters.

        ``kind`` matches exactly or by dotted prefix: querying
        ``"cloud"`` returns ``"cloud.release"`` events too.
        """
        out: List[Event] = []
        for event in self._events:
            if kind is not None and not _kind_matches(event.kind, kind):
                continue
            if subject is not None and event.subject != subject:
                continue
            if since is not None and event.at < since:
                continue
            if until is not None and event.at > until:
                continue
            if predicate is not None and not predicate(event):
                continue
            out.append(event)
        return out

    def first(self, kind: Optional[str] = None, subject: Optional[str] = None) -> Optional[Event]:
        """Return the earliest matching event, or ``None``."""
        matches = self.query(kind=kind, subject=subject)
        return matches[0] if matches else None

    def last(self, kind: Optional[str] = None, subject: Optional[str] = None) -> Optional[Event]:
        """Return the latest matching event, or ``None``."""
        matches = self.query(kind=kind, subject=subject)
        return matches[-1] if matches else None

    def counts_by_kind(self) -> Dict[str, int]:
        """Histogram of event kinds."""
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts


def _kind_matches(kind: str, wanted: str) -> bool:
    return kind == wanted or kind.startswith(wanted + ".")
