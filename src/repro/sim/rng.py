"""Named, independent deterministic random streams.

A single master seed fans out into per-subsystem streams so that adding
randomness to one subsystem (say, attacker content generation) does not
perturb another (say, world generation).  Each stream is an ordinary
:class:`random.Random`, seeded from the master seed and the stream name
via a stable hash (``hashlib``, not ``hash()``, which is salted per
process).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def _derive_seed(master_seed: int, name: str) -> int:
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngStreams:
    """A factory of named deterministic random streams.

    >>> streams = RngStreams(42)
    >>> a = streams.get("world")
    >>> b = streams.get("world")
    >>> a is b
    True
    """

    def __init__(self, master_seed: int = 0):
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def get(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(_derive_seed(self.master_seed, name))
            self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RngStreams":
        """Derive an independent child family of streams.

        Useful when a subsystem itself wants named streams (e.g. one
        per attacker group) without colliding with its siblings.
        """
        return RngStreams(_derive_seed(self.master_seed, f"fork:{name}"))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"RngStreams(master_seed={self.master_seed}, streams={sorted(self._streams)})"
