"""Simulation kernel: deterministic time, seeded randomness and event logging.

Every other subsystem in :mod:`repro` is built on top of this package.
Nothing in the library reads the wall clock or the global
:mod:`random` state; instead a :class:`~repro.sim.clock.SimClock` and a
:class:`~repro.sim.rng.RngStreams` instance are threaded through the
simulation so that a given seed always reproduces the same three-year
"Internet history" bit for bit.
"""

from repro.sim.clock import SimClock
from repro.sim.events import Event, EventLog
from repro.sim.revisions import RevisionJournal
from repro.sim.rng import RngStreams

__all__ = ["SimClock", "Event", "EventLog", "RevisionJournal", "RngStreams"]
