"""Simulated time.

The paper's measurement runs from January 2020 to early 2023 with weekly
sampling.  :class:`SimClock` models that: it holds a current simulated
:class:`~datetime.datetime` and advances in explicit steps.  All
timestamps in the simulation (DNS record changes, HTML snapshots,
certificate issuance, WHOIS creation dates) are drawn from a clock so
that longitudinal analyses (hijack duration, Figure 1 growth curves,
certificate timelines) are meaningful and reproducible.
"""

from __future__ import annotations

from datetime import datetime, timedelta
from typing import Iterator

#: Start of the paper's measurement period (Section 3).
DEFAULT_START = datetime(2020, 1, 6)  # first Monday of January 2020

#: End of the paper's measurement period (three years later).
DEFAULT_END = datetime(2023, 1, 2)


class ClockError(RuntimeError):
    """Raised on invalid clock manipulation (e.g. moving backwards)."""


class SimClock:
    """A monotonically advancing simulated clock.

    Parameters
    ----------
    start:
        Initial simulated time.
    end:
        Optional end of the simulation; :meth:`finished` becomes true
        once the clock passes it.  Advancing past ``end`` is allowed
        (analyses may look slightly beyond the window) but iteration
        helpers stop there.
    """

    def __init__(self, start: datetime = DEFAULT_START, end: datetime = DEFAULT_END):
        if end is not None and end < start:
            raise ClockError(f"end {end} precedes start {start}")
        self._start = start
        self._end = end
        self._now = start

    # -- read accessors -------------------------------------------------

    @property
    def start(self) -> datetime:
        """The simulated instant the clock was created at."""
        return self._start

    @property
    def end(self) -> datetime:
        """The configured end of the measurement window."""
        return self._end

    @property
    def now(self) -> datetime:
        """The current simulated instant."""
        return self._now

    @property
    def elapsed(self) -> timedelta:
        """Time elapsed since :attr:`start`."""
        return self._now - self._start

    def finished(self) -> bool:
        """Whether the clock has reached or passed its end."""
        return self._now >= self._end

    # -- mutation -------------------------------------------------------

    def advance(self, delta: timedelta) -> datetime:
        """Move the clock forward by ``delta`` and return the new time."""
        if delta < timedelta(0):
            raise ClockError(f"cannot move clock backwards by {delta}")
        self._now += delta
        return self._now

    def advance_days(self, days: float) -> datetime:
        """Move the clock forward by ``days`` days."""
        return self.advance(timedelta(days=days))

    def advance_to(self, instant: datetime) -> datetime:
        """Jump forward to ``instant`` (which must not be in the past)."""
        if instant < self._now:
            raise ClockError(f"cannot move clock backwards to {instant}")
        self._now = instant
        return self._now

    # -- iteration helpers ----------------------------------------------

    def ticks(self, step: timedelta) -> Iterator[datetime]:
        """Yield successive instants, advancing by ``step``, until end.

        The current instant is yielded first, so a weekly monitoring
        loop sees the very first week of the measurement.
        """
        if step <= timedelta(0):
            raise ClockError(f"step must be positive, got {step}")
        while self._now < self._end:
            yield self._now
            self.advance(step)

    def weekly(self) -> Iterator[datetime]:
        """Weekly ticks — the paper's sampling cadence (Section 1)."""
        return self.ticks(timedelta(weeks=1))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"SimClock(now={self._now.isoformat()})"


def month_key(instant: datetime) -> str:
    """Return a ``YYYY-MM`` bucket key used for monthly aggregation."""
    return f"{instant.year:04d}-{instant.month:02d}"
