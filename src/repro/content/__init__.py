"""Content generation: vocabularies and page builders.

Everything the simulated web serves is produced here: legitimate
organization pages (and their benign churn — redesigns, parked pages —
that the detector must not flag), and the raw vocabulary pools that
attacker content generators in :mod:`repro.attacker` draw from.  The
vocabulary mirrors the paper's findings: Indonesian gambling terms
dominate (Tables 1 and 5), followed by adult content, with Japanese
auto-generated spam for the Japanese Keyword Hack (Section 5.2.1).
"""

from repro.content.vocab import (
    ADULT_KEYWORDS,
    BENIGN_BUSINESS_WORDS,
    GAMBLING_KEYWORDS,
    JAPANESE_SPAM_WORDS,
    MAINTENANCE_PHRASES,
    PHARMA_KEYWORDS,
    STOPWORDS,
    Topic,
    keywords_for_topic,
)
from repro.content.benign import BenignContentFactory

__all__ = [
    "Topic",
    "GAMBLING_KEYWORDS",
    "ADULT_KEYWORDS",
    "PHARMA_KEYWORDS",
    "JAPANESE_SPAM_WORDS",
    "BENIGN_BUSINESS_WORDS",
    "MAINTENANCE_PHRASES",
    "STOPWORDS",
    "keywords_for_topic",
    "BenignContentFactory",
]
