"""Benign content generation.

Produces the legitimate web the detector must *not* flag: corporate
and university pages, blogs, and the two benign-change patterns the
paper explicitly rules out (Section 3.2) — parked-domain pages whose
commercial content rotates collectively over time, and ordinary site
redesigns.
"""

from __future__ import annotations

import random
from datetime import datetime
from typing import List, Optional

from repro.content.vocab import BENIGN_BUSINESS_WORDS
from repro.web.html import HtmlDocument, Link, Script
from repro.web.sitemap import Sitemap


class BenignContentFactory:
    """Generates legitimate pages for organizations."""

    def __init__(self, rng: random.Random):
        self._rng = rng

    def corporate_index(self, org_name: str, sector: str, revision: int = 0) -> HtmlDocument:
        """A company homepage; ``revision`` varies wording (redesigns)."""
        words = self._sample_words(6 + revision % 3)
        doc = HtmlDocument(
            title=f"{org_name} — {words[0].title()} & {words[1].title()}",
            lang="en",
            meta={
                "description": f"{org_name} delivers {words[2]} and {words[3]} "
                f"for the {sector.lower()} sector.",
                "keywords": ", ".join(words[:5]),
            },
        )
        doc.headings = [f"Welcome to {org_name}"]
        doc.paragraphs = [
            f"{org_name} is a leader in {sector.lower()} {words[4]}.",
            f"Explore our {words[0]} and learn how our {words[1]} team "
            f"supports customers worldwide. Revision {revision}.",
        ]
        doc.links = [
            Link(href="/about", text="About us"),
            Link(href="/products", text=words[0].title()),
            Link(href="/careers", text="Careers"),
            Link(href="/contact", text="Contact"),
        ]
        return doc

    def university_index(self, org_name: str, revision: int = 0) -> HtmlDocument:
        """A university homepage."""
        doc = HtmlDocument(
            title=f"{org_name} | Education and Research",
            lang="en",
            meta={"description": f"Official site of {org_name}.",
                  "keywords": "university, research, students, admissions"},
        )
        doc.headings = [org_name]
        doc.paragraphs = [
            f"{org_name} advances research and education across disciplines.",
            f"Apply for the upcoming semester. Catalogue revision {revision}.",
        ]
        doc.links = [
            Link(href="/admissions", text="Admissions"),
            Link(href="/faculty", text="Faculty"),
            Link(href="/library", text="Library"),
        ]
        return doc

    def service_page(self, org_name: str, service: str) -> HtmlDocument:
        """An internal application/service page (the typical cloud asset)."""
        doc = HtmlDocument(
            title=f"{service.title()} — {org_name}",
            lang="en",
            meta={"description": f"{service} portal for {org_name}."},
        )
        doc.headings = [f"{org_name} {service}"]
        doc.paragraphs = [
            f"Sign in to access the {service} portal.",
            "For assistance contact your administrator.",
        ]
        doc.links = [Link(href="/login", text="Sign in")]
        doc.scripts = [Script(src="/static/app.js")]
        return doc

    def parked_page(self, domain: str, campaign: int) -> HtmlDocument:
        """A registrar parking page.

        Parking providers rotate ad content across *all* their parked
        domains at once — a same-change-many-domains pattern that the
        registrar-diversity analysis (Figure 10) must distinguish from
        abuse.  ``campaign`` selects the current rotation.
        """
        offers = ["insurance", "hosting", "travel deals", "credit cards", "broadband"]
        offer = offers[campaign % len(offers)]
        doc = HtmlDocument(
            title=f"{domain} — domain parked",
            lang="en",
            meta={"description": f"This domain is parked. Sponsored listings for {offer}."},
        )
        doc.paragraphs = [
            f"The domain {domain} is registered and parked.",
            f"Sponsored results: best {offer} offers.",
        ]
        doc.links = [Link(href=f"https://ads.parking-net.example/{offer}", text=offer.title())]
        return doc

    def benign_sitemap(self, fqdn: str, page_count: int, at: Optional[datetime] = None) -> Sitemap:
        """A modest, human-scale sitemap."""
        sitemap = Sitemap()
        paths = ["about", "products", "careers", "contact", "news", "support",
                 "privacy", "terms", "blog", "events"]
        for index in range(min(page_count, 200)):
            slug = paths[index % len(paths)]
            suffix = "" if index < len(paths) else f"-{index}"
            sitemap.add(f"https://{fqdn}/{slug}{suffix}", lastmod=at)
        return sitemap

    def _sample_words(self, count: int) -> List[str]:
        return self._rng.sample(list(BENIGN_BUSINESS_WORDS), count)
