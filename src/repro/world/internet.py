"""The assembled simulated Internet.

:class:`Internet` wires every substrate together — DNS, network, cloud
catalog, PKI, WHOIS, threat intel — and offers the handful of
cross-cutting operations (certificate issuance for a resource, GeoIP
for attacker hosting ranges) that both legitimate owners and attackers
use.  One :class:`Internet` instance is one simulated world.
"""

from __future__ import annotations

from datetime import datetime, timedelta
from typing import Dict, Optional

from repro.cloud.catalog import CloudCatalog, build_catalog
from repro.cloud.resources import CloudResource
from repro.content.benign import BenignContentFactory
from repro.dns.passive_dns import PassiveDNS
from repro.dns.resolver import Resolver
from repro.dns.zone import ZoneRegistry
from repro.faults.retry import CircuitBreaker
from repro.intel.darknet import DarknetFeed
from repro.intel.shorteners import UrlShortener
from repro.intel.virustotal import VirusTotalService
from repro.net.network import Network
from repro.pki.ca import CertificateAuthority
from repro.pki.certificate import Certificate
from repro.pki.ct_log import CTLog
from repro.sim.clock import SimClock
from repro.sim.events import EventLog
from repro.sim.revisions import RevisionJournal
from repro.sim.rng import RngStreams
from repro.web.client import HttpClient
from repro.whois.registry import DomainRegistry

#: Hosting providers attackers rent infrastructure from, with country —
#: concentrated in the US, France and Singapore as in Figure 26.
ATTACKER_HOSTING_RANGES = (
    ("Quantum Hosting LLC", "US", "141.98.0.0/16"),
    ("RapidServe Inc", "US", "167.71.0.0/16"),
    ("OVH SAS", "FR", "51.38.0.0/16"),
    ("Scaleway", "FR", "163.172.0.0/16"),
    ("SG Digital Pte", "SG", "128.199.0.0/16"),
    ("Lion City Cloud", "SG", "159.89.0.0/16"),
    ("Hetzner Online", "DE", "88.198.0.0/16"),
    ("HostPalace", "NL", "185.56.0.0/16"),
)


class Internet:
    """All substrates of one simulated world, wired together."""

    def __init__(
        self,
        streams: RngStreams,
        clock: Optional[SimClock] = None,
        edge_icmp_drop_rate: float = 0.28,
        reregistration_cooldown: timedelta = timedelta(0),
        randomize_names: bool = False,
        fault_plan=None,
        breaker: Optional[CircuitBreaker] = None,
    ):
        self.streams = streams
        self.clock = clock if clock is not None else SimClock()
        self.events = EventLog()
        #: World-wide revision journal: every mutation path (DNS, net
        #: bindings, edge routing, site content, cloud lifecycle)
        #: publishes through it, giving incremental sweeps one place to
        #: ask "what changed since my last pass?".
        self.revisions = RevisionJournal(self.events)
        #: The shared fault-injection plan (``None`` = fully healthy
        #: Internet — byte-identical to the pre-faults behaviour).
        self.faults = fault_plan
        self.zones = ZoneRegistry(journal=self.revisions)
        self.network = Network(fault_plan=fault_plan, journal=self.revisions)
        self.passive_dns = PassiveDNS()
        self.resolver = Resolver(self.zones, self.passive_dns, fault_plan=fault_plan)
        self.catalog: CloudCatalog = build_catalog(
            self.zones,
            self.network,
            streams,
            events=self.events,
            edge_icmp_drop_rate=edge_icmp_drop_rate,
            reregistration_cooldown=reregistration_cooldown,
            randomize_names=randomize_names,
            journal=self.revisions,
        )
        self.catalog.attach_resolver(self.resolver)
        if fault_plan is not None:
            # Edge-side HTTP faults: every provider edge (and every
            # dedicated server provisioned later) shares the plan.
            for provider in self.catalog.providers.values():
                provider.fault_plan = fault_plan
                for edge in provider.edges:
                    edge.fault_plan = fault_plan
        if breaker is None and fault_plan is not None:
            breaker = CircuitBreaker()
        self.client = HttpClient(
            self.resolver, self.network, fault_plan=fault_plan, breaker=breaker
        )
        self.whois = DomainRegistry()
        self.ct_log = CTLog()
        self.cas: Dict[str, CertificateAuthority] = {}
        self._build_cas()
        self.virustotal = VirusTotalService(streams.get("virustotal"))
        self.darknet = DarknetFeed()
        self.shortener = UrlShortener(streams.get("shortener"))
        self.benign_content = BenignContentFactory(streams.get("benign-content"))
        self.geoip = self.catalog.geoip
        for organization, country, cidr in ATTACKER_HOSTING_RANGES:
            self.geoip.add(cidr, country, organization)

    def _build_cas(self) -> None:
        definitions = (
            ("Let's Encrypt", "letsencrypt.org", True, 0.0),
            ("ZeroSSL", "zerossl.com", True, 0.0),
            ("Microsoft Azure TLS", "microsoft.com", True, 0.0),
            ("Amazon", "amazon.com", True, 0.0),
            ("DigiCert", "digicert.com", False, 199.0),
        )
        for name, identifier, free, price in definitions:
            self.cas[name] = CertificateAuthority(
                name=name,
                identifier=identifier,
                ct_log=self.ct_log,
                zones=self.zones,
                client=self.client,
                rng=self.streams.get(f"ca:{identifier}"),
                free=free,
                price_usd=price,
            )

    # -- cross-cutting operations ------------------------------------------------

    def issue_certificate(
        self,
        resource: CloudResource,
        hostname: str,
        at: datetime,
        ca_name: str = "Let's Encrypt",
    ) -> Certificate:
        """Obtain and install a domain-validated cert for ``hostname``.

        Works for whoever currently controls the resource — the owner
        or a hijacker (Section 5.6's point).  Raises
        :class:`repro.pki.ca.IssuanceError` on validation/CAA failure.
        """
        ca = self.cas[ca_name]
        provider = self.catalog.provider(resource.provider)
        installer = provider.challenge_installer(resource)
        certificate = ca.issue([hostname], installer, at)
        provider.install_certificate(resource, hostname, certificate)
        self.revisions.publish(
            at, "pki.issued", hostname,
            issuer=ca_name, owner=resource.owner, serial=certificate.serial,
        )
        return certificate
