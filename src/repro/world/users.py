"""Simulated end users with cookie jars.

Section 5.5's cookie-theft findings need victims: users who hold
authentication cookies scoped to an organization's parent domain and
keep visiting its subdomains after a hijack.  Each simulated user
carries a :class:`~repro.web.cookies.CookieJar`; weekly they browse a
few of their organization's assets, so a hijacked asset receives
exactly the cookies browser policy would send it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from datetime import datetime
from typing import Dict, List

from repro.web.client import FetchStatus, HttpClient
from repro.web.cookies import Cookie, CookieJar
from repro.world.organizations import Organization


@dataclass
class SimUser:
    """One browsing user affiliated with an organization."""

    user_id: str
    org_key: str
    source_ip: str
    jar: CookieJar = field(default_factory=CookieJar)


class UserPopulation:
    """Users, their cookies, and their weekly browsing.

    When a ``monetization`` ecosystem is attached, users occasionally
    click the referral links on the (possibly hijacked) pages they
    visit — which is what turns hijacks into revenue (Section 5.3).
    """

    def __init__(
        self,
        client: HttpClient,
        rng: random.Random,
        monetization=None,
        click_rate: float = 0.3,
    ):
        self._client = client
        self._rng = rng
        self._users: List[SimUser] = []
        self._orgs: Dict[str, Organization] = {}
        self._monetization = monetization
        self.click_rate = click_rate

    def add_users_for_org(self, org: Organization, count: int, at: datetime) -> None:
        """Create ``count`` logged-in users for ``org``.

        Each receives an authentication cookie for the *parent* domain
        with realistic flag mixes (HttpOnly ~60%, Secure ~50%) plus a
        non-sensitive tracking cookie.
        """
        self._orgs[org.key] = org
        for index in range(count):
            ip = f"203.0.{self._rng.randrange(256)}.{self._rng.randrange(1, 255)}"
            user = SimUser(
                user_id=f"{org.key}-user{len(self._users)}-{index}",
                org_key=org.key,
                source_ip=ip,
            )
            user.jar.set(
                Cookie(
                    name="session_token",
                    value=f"auth-{user.user_id}-{self._rng.randrange(10**9)}",
                    domain=org.domain,
                    secure=self._rng.random() < 0.5,
                    http_only=self._rng.random() < 0.6,
                    is_authentication=True,
                )
            )
            user.jar.set(
                Cookie(
                    name="visitor_id",
                    value=f"v-{self._rng.randrange(10**9)}",
                    domain=org.domain,
                )
            )
            self._users.append(user)

    def users(self) -> List[SimUser]:
        return list(self._users)

    def weekly_browse(self, at: datetime, visits_per_user: int = 2) -> int:
        """Every user visits a few of their org's subdomains.

        Returns the number of successful page loads.  Visits use HTTPS
        when the asset advertises a certificate, HTTP otherwise —
        deciding whether Secure cookies travel.
        """
        loads = 0
        for user in self._users:
            org = self._orgs.get(user.org_key)
            if org is None or not org.assets:
                continue
            count = min(visits_per_user, len(org.assets))
            for asset in self._rng.sample(org.assets, count):
                scheme = "https" if asset.has_certificate else "http"
                outcome = self._client.fetch(
                    asset.fqdn, scheme=scheme, at=at,
                    headers={"User-Agent": "SimBrowser/1.0", "X-Client-IP": user.source_ip},
                    cookie_jar=user.jar,
                )
                if outcome.status == FetchStatus.TLS_ERROR:
                    # A share of users click through the warning (or the
                    # site is bookmarked over plain HTTP): retry without
                    # TLS, so Secure cookies stay home but others travel.
                    if self._rng.random() < 0.5:
                        outcome = self._client.fetch(
                            asset.fqdn, scheme="http", at=at,
                            headers={
                                "User-Agent": "SimBrowser/1.0",
                                "X-Client-IP": user.source_ip,
                            },
                            cookie_jar=user.jar,
                        )
                if outcome.ok:
                    loads += 1
                    self._maybe_click_through(outcome.response.body, asset.fqdn, at)
        return loads

    def _maybe_click_through(self, body: str, fqdn: str, at: datetime) -> None:
        """Click a referral link on the loaded page, sometimes.

        The cheap substring guard keeps the common (benign-page) path
        free of HTML parsing.
        """
        if self._monetization is None or "ref=" not in body:
            return
        if self._rng.random() >= self.click_rate:
            return
        from repro.web.html import parse_html

        for link in parse_html(body).links:
            if "?ref=" in link.href or "&ref=" in link.href:
                self._monetization.handle_click(link.href, at, source_fqdn=fqdn)
                return
