"""Industry sectors for enterprise organizations.

Weights skew asset counts so that Industrials, Energy and Motor
Vehicles — the sectors Figure 12 shows with the highest hijack volume —
operate the largest cloud estates, while abuse remains widespread
across all sectors.
"""

from __future__ import annotations

from typing import Tuple

#: (sector name, relative frequency among enterprises, asset-count multiplier)
SECTORS: Tuple[Tuple[str, float, float], ...] = (
    ("Industrials", 0.12, 1.6),
    ("Energy", 0.09, 1.5),
    ("Motor Vehicles & Parts", 0.08, 1.5),
    ("Financials", 0.12, 1.2),
    ("Technology", 0.11, 1.3),
    ("Health Care", 0.09, 1.0),
    ("Retailing", 0.08, 1.0),
    ("Telecommunications", 0.06, 1.1),
    ("Media & Entertainment", 0.05, 0.9),
    ("Food & Beverage", 0.06, 0.8),
    ("Aerospace & Defense", 0.04, 1.0),
    ("Chemicals", 0.04, 0.9),
    ("Transportation", 0.04, 0.8),
    ("Hotels & Restaurants", 0.02, 0.7),
)

SECTOR_NAMES = tuple(name for name, _, _ in SECTORS)
_WEIGHTS = tuple(weight for _, weight, _ in SECTORS)
_MULTIPLIERS = {name: mult for name, _, mult in SECTORS}


def pick_sector(rng) -> str:
    """Draw a sector according to frequency weights."""
    return rng.choices(SECTOR_NAMES, weights=_WEIGHTS, k=1)[0]


def asset_multiplier(sector: str) -> float:
    """Relative cloud-estate size for a sector."""
    return _MULTIPLIERS.get(sector, 1.0)
