"""World generation: the population of organizations and their assets.

Builds the simulated equivalent of the paper's initial search space
(Section 3.1): enterprises (Fortune 1000 / Global 500), universities,
government domains and Tranco/Alexa-popular sites, each with a
registered SLD, an authoritative zone, and a portfolio of subdomains —
many pointing at cloud resources.  The lifecycle engine then evolves
this world weekly for three simulated years: new assets appear,
resources get released (leaving dangling records when owners forget to
purge), owners eventually remediate, and benign content churns.
"""

from repro.world.organizations import Organization, OrgKind
from repro.world.sectors import SECTORS
from repro.world.population import PopulationBuilder, PopulationConfig
from repro.world.internet import Internet
from repro.world.lifecycle import LifecycleConfig, WorldEngine
from repro.world.users import UserPopulation

__all__ = [
    "Organization",
    "OrgKind",
    "SECTORS",
    "PopulationBuilder",
    "PopulationConfig",
    "Internet",
    "WorldEngine",
    "LifecycleConfig",
    "UserPopulation",
]
