"""The weekly evolution of the simulated world.

Drives the legitimate side of the three-year history the measurement
observes (Figure 1): organizations keep adding cloud assets (the
monitored set roughly doubles over the period), keep *releasing*
resources — usually purging the DNS record, sometimes forgetting
(creating dangling records) — and, once a dangling record has been
hijacked, eventually notice and remediate with the delay mixture the
paper measures in Section 4.4 (many fixes within 15 days, over a third
beyond 65 days, some beyond a year).  Benign churn (site redesigns,
parked-domain ad rotation) runs alongside so the detector has
legitimate changes to not flag.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from datetime import datetime, timedelta
from typing import Dict, List, Optional

from repro.dns.records import RRType
from repro.obs import OBS
from repro.pki.ca import IssuanceError
from repro.world.ground_truth import GroundTruthLog
from repro.world.internet import Internet
from repro.world.organizations import Asset, AssetKind, Organization, OrgKind
from repro.world.population import PopulationBuilder, PopulationConfig


@dataclass
class LifecycleConfig:
    """Weekly rates for world evolution."""

    #: Expected weekly asset growth as a fraction of the current estate.
    #: 0.0045/week compounds to roughly 2x over 156 weeks (Figure 1).
    weekly_growth_rate: float = 0.0045
    #: Weekly probability that an active cloud asset's resource is released.
    weekly_release_rate: float = 0.004
    #: Probability the owner purges the DNS record at release time.
    purge_on_release_rate: float = 0.70
    #: Weekly probability a (un-hijacked) dangling record gets purged anyway.
    spontaneous_purge_rate: float = 0.008
    #: Weekly probability an organization redesigns its pages.
    weekly_redesign_rate: float = 0.01
    #: How often parked-domain ad content rotates.
    parking_rotation_weeks: int = 8


#: Remediation-delay mixture, matching Figure 15: a large share fixed
#: within ~2 weeks, a middle band, and a negligent third beyond 65 days
#: with a tail past a year.
_REMEDIATION_BUCKETS = (
    (0.40, 2, 15),      # noticed fast
    (0.22, 16, 64),     # noticed eventually
    (0.28, 66, 360),    # negligent
    (0.10, 366, 800),   # effectively forgotten
)


class WorldEngine:
    """Applies one week of legitimate-world evolution at a time."""

    def __init__(
        self,
        internet: Internet,
        organizations: List[Organization],
        builder: PopulationBuilder,
        population_config: PopulationConfig,
        ground_truth: GroundTruthLog,
        config: Optional[LifecycleConfig] = None,
    ):
        self._internet = internet
        self.organizations = organizations
        self._builder = builder
        self._population_config = population_config
        self._ground_truth = ground_truth
        self.config = config or LifecycleConfig()
        self._rng: random.Random = internet.streams.get("lifecycle")
        self._orgs_by_key: Dict[str, Organization] = {
            org.key: org for org in organizations
        }
        self._parked: List[Organization] = [
            org for org in organizations if org.is_parked
        ]
        self._parking_campaign = 0
        self._weeks_run = 0
        for org in self._parked:
            self._render_parked(org)

    # -- main entry point -------------------------------------------------------

    def step(self, at: datetime) -> None:
        """Run one simulated week of legitimate-world activity."""
        self._grow(at)
        self._release_resources(at)
        self._purge_spontaneously(at)
        self._remediate_hijacks(at)
        self._benign_churn(at)
        self._feed_virustotal(at)
        self._weeks_run += 1

    # -- growth ---------------------------------------------------------------------

    def _grow(self, at: datetime) -> None:
        total_assets = sum(len(org.assets) for org in self.organizations)
        expected_new = total_assets * self.config.weekly_growth_rate
        new_count = int(expected_new)
        if self._rng.random() < (expected_new - new_count):
            new_count += 1
        for _ in range(new_count):
            org = self._rng.choice(self.organizations)
            self._builder.add_asset(org, self._population_config, at)

    # -- releases & dangling records ---------------------------------------------------

    def _release_resources(self, at: datetime) -> None:
        for org in self.organizations:
            for asset in org.assets:
                if asset.kind == AssetKind.SELF_HOSTED:
                    continue
                resource = asset.resource
                if resource is None or not resource.active:
                    continue
                if resource.owner != org.account:
                    continue  # currently hijacked; not the org's to release
                if self._rng.random() >= self.config.weekly_release_rate:
                    continue
                provider = self._internet.catalog.provider(resource.provider)
                provider.release(resource, at)
                if self._rng.random() < self.config.purge_on_release_rate:
                    self._purge_asset_record(org, asset, at)
                else:
                    asset.dangling_since = at
                    self._internet.revisions.publish(
                        at, "world.dangling", asset.fqdn,
                        org=org.key, service=asset.service_key,
                    )

    def _purge_spontaneously(self, at: datetime) -> None:
        for org in self.organizations:
            for asset in org.assets:
                if not asset.is_dangling:
                    continue
                if self._is_hijacked(asset):
                    continue
                if self._rng.random() < self.config.spontaneous_purge_rate:
                    self._purge_asset_record(org, asset, at)

    def _purge_asset_record(self, org: Organization, asset: Asset, at: datetime) -> None:
        zone = self._internet.zones.get_zone(org.domain)
        rtype = RRType.CNAME if asset.kind == AssetKind.CLOUD_CNAME else RRType.A
        zone.remove_all(asset.fqdn, rtype, at)
        asset.purged_at = at
        if asset.dangling_since is not None:
            self._internet.revisions.publish(
                at, "world.purged", asset.fqdn, org=org.key
            )

    # -- remediation of hijacks -----------------------------------------------------------

    def _remediate_hijacks(self, at: datetime) -> None:
        for record in self._ground_truth.active_records():
            asset = record.asset
            if asset.remediation_due is None:
                asset.remediation_due = record.taken_over_at + self._remediation_delay()
            if at >= asset.remediation_due:
                org = self._org_by_key(asset.org_key)
                if org is not None:
                    self._purge_asset_record(org, asset, at)
                self._ground_truth.mark_remediated(asset.fqdn, at)
                self._internet.revisions.publish(
                    at, "world.remediated", asset.fqdn, attacker=record.attacker_group
                )

    def _remediation_delay(self) -> timedelta:
        roll = self._rng.random()
        cumulative = 0.0
        for share, low, high in _REMEDIATION_BUCKETS:
            cumulative += share
            if roll < cumulative:
                return timedelta(days=self._rng.randrange(low, high + 1))
        return timedelta(days=_REMEDIATION_BUCKETS[-1][2])

    # -- benign churn ---------------------------------------------------------------------------

    def _benign_churn(self, at: datetime) -> None:
        for org in self.organizations:
            if org in self._parked:
                continue
            if self._rng.random() < self.config.weekly_redesign_rate:
                self._redesign(org)
        if self._weeks_run and self._weeks_run % 13 == 0:
            self._renew_managed_certificates(at)
        if (
            self.config.parking_rotation_weeks > 0
            and self._weeks_run % self.config.parking_rotation_weeks == 0
        ):
            self._parking_campaign += 1
            for org in self._parked:
                self._render_parked(org)

    def _redesign(self, org: Organization) -> None:
        org.page_revision += 1
        for asset in org.assets:
            resource = asset.resource
            if resource is None or not resource.active or resource.owner != org.account:
                continue
            doc = self._internet.benign_content.service_page(
                org.display_name, asset.fqdn.split(".")[0]
            )
            doc.paragraphs.append(f"Design revision {org.page_revision}.")
            resource.site.put_index(doc.render())

    def _renew_managed_certificates(self, at: datetime) -> None:
        """Quarterly renewal of managed multi-SAN/wildcard certificates.

        Keeps the legitimate issuance series of Figure 20 flowing over
        the whole measurement window, as ACME automation does.
        """
        whois = self._internet.whois
        for org in self.organizations:
            if not org.managed_cert_sans:
                continue
            ca = self._internet.cas[
                self._rng.choice(("Let's Encrypt", "DigiCert", "ZeroSSL"))
            ]
            try:
                ca.issue_dns_validated(
                    org.managed_cert_sans, whois.owner_of(org.domain),
                    whois.owner_of, at,
                )
            except IssuanceError:
                # A CAA record added since the original issuance can
                # refuse this CA at renewal time; that is world
                # behaviour, not a bug — anything else propagates.
                OBS.metrics.inc("pki.issuance_refused", path="renewal")

    def _render_parked(self, org: Organization) -> None:
        doc = self._internet.benign_content.parked_page(org.domain, self._parking_campaign)
        for asset in org.assets:
            resource = asset.resource
            if resource is not None and resource.active and resource.owner == org.account:
                resource.site.put_index(doc.render())

    # -- AV-vendor exposure ------------------------------------------------------------------------

    def _feed_virustotal(self, at: datetime) -> None:
        for record in self._ground_truth.active_records():
            self._internet.virustotal.observe_abuse(record.fqdn, at)

    # -- helpers ---------------------------------------------------------------------------------------

    def _is_hijacked(self, asset: Asset) -> bool:
        return any(r.active for r in self._ground_truth.records_for(asset.fqdn))

    def _org_by_key(self, key: str) -> Optional[Organization]:
        return self._orgs_by_key.get(key)
