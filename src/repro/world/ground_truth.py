"""Ground-truth hijack records.

The simulation knows what the paper could never know for certain: which
takeovers actually happened, by whom, and when.  Attacker campaigns
append to this log; the world engine reads it to drive remediation and
AV flagging; the evaluation extensions score the detector against it.
The *measurement pipeline itself never reads this log* — it works only
from externally observable data, like the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Dict, List, Optional

from repro.cloud.resources import CloudResource
from repro.dns.names import Name
from repro.world.organizations import Asset


@dataclass
class HijackRecord:
    """One successful takeover of a dangling record."""

    asset: Asset
    attacker_group: str
    resource: CloudResource
    taken_over_at: datetime
    remediated_at: Optional[datetime] = None

    @property
    def fqdn(self) -> Name:
        return self.asset.fqdn

    @property
    def active(self) -> bool:
        return self.remediated_at is None

    def duration_days(self, now: Optional[datetime] = None) -> float:
        """Days the hijack lasted (or has lasted, given ``now``).

        Like :meth:`AbuseEpisode.duration_days`, ``now`` must be the
        naive simulation clock — tz-aware values betray wall-clock use
        and an active hijack needs an explicit censoring instant.
        """
        if now is not None and now.tzinfo is not None:
            raise ValueError(
                "duration_days(now=...) takes a naive simulation-clock "
                f"datetime; got tz-aware {now.isoformat()}, which looks "
                "like wall-clock time"
            )
        end = self.remediated_at or now
        if end is None:
            raise ValueError(
                "hijack still active: pass now= from the simulation "
                "clock (e.g. result.end), never datetime.now()"
            )
        return (end - self.taken_over_at).total_seconds() / 86_400.0


class GroundTruthLog:
    """All hijacks that truly occurred in this world."""

    def __init__(self) -> None:
        self._records: List[HijackRecord] = []
        self._by_fqdn: Dict[Name, List[HijackRecord]] = {}

    def record_takeover(
        self,
        asset: Asset,
        attacker_group: str,
        resource: CloudResource,
        at: datetime,
    ) -> HijackRecord:
        """Register a successful takeover."""
        record = HijackRecord(
            asset=asset, attacker_group=attacker_group, resource=resource,
            taken_over_at=at,
        )
        self._records.append(record)
        self._by_fqdn.setdefault(asset.fqdn, []).append(record)
        return record

    def mark_remediated(self, fqdn: Name, at: datetime) -> None:
        """Close the active hijack of ``fqdn``, if any."""
        for record in self._by_fqdn.get(fqdn, []):
            if record.active:
                record.remediated_at = at

    def all_records(self) -> List[HijackRecord]:
        return list(self._records)

    def active_records(self) -> List[HijackRecord]:
        return [r for r in self._records if r.active]

    def records_for(self, fqdn: Name) -> List[HijackRecord]:
        return list(self._by_fqdn.get(fqdn, []))

    def hijacked_fqdns(self) -> List[Name]:
        """Every FQDN that was hijacked at least once, sorted."""
        return sorted(self._by_fqdn)

    def was_hijacked(self, fqdn: Name) -> bool:
        return fqdn in self._by_fqdn

    def __len__(self) -> int:
        return len(self._records)
