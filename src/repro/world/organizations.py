"""Organizations and their digital assets."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from datetime import datetime
from typing import List, Optional

from repro.cloud.resources import CloudResource
from repro.dns.names import Name


class OrgKind(enum.Enum):
    """The population segments of the paper's search space."""

    ENTERPRISE = "enterprise"
    UNIVERSITY = "university"
    GOVERNMENT = "government"
    POPULAR_SITE = "popular-site"


class AssetKind(enum.Enum):
    """How a subdomain maps to infrastructure."""

    CLOUD_CNAME = "cloud-cname"  # CNAME to a provider-generated domain
    CLOUD_A = "cloud-a"  # A record to a dedicated cloud IP
    SELF_HOSTED = "self-hosted"  # A record to org-owned space


@dataclass
class Asset:
    """One subdomain of an organization and what it points at.

    ``resource`` is the cloud resource currently (or last) backing the
    asset; ``dangling_since`` is set when the resource was released
    without the DNS record being purged; ``remediation_due`` is the
    simulated instant the owner will finally fix a hijacked record
    (sampled from the paper's observed duration mixture).
    """

    fqdn: Name
    kind: AssetKind
    org_key: str
    created_at: datetime
    resource: Optional[CloudResource] = None
    service_key: str = ""
    dangling_since: Optional[datetime] = None
    purged_at: Optional[datetime] = None
    remediation_due: Optional[datetime] = None
    has_certificate: bool = False
    hsts: bool = False

    @property
    def is_dangling(self) -> bool:
        """Record still present while its resource is gone."""
        return self.dangling_since is not None and self.purged_at is None


@dataclass
class Organization:
    """One organization in the search space."""

    key: str
    display_name: str
    kind: OrgKind
    domain: Name
    country: str
    sector: str = ""
    fortune500_rank: Optional[int] = None
    global500_rank: Optional[int] = None
    tranco_rank: Optional[int] = None
    qs_rank: Optional[int] = None
    assets: List[Asset] = field(default_factory=list)
    page_revision: int = 0
    #: Parked domains are registrar-managed: their content rotates
    #: collectively, the benign pattern the registrar rule-out handles.
    is_parked: bool = False
    #: SANs of the org's managed (DNS-validated) certificate, if any —
    #: renewed periodically, feeding Figure 20's multi-SAN series.
    managed_cert_sans: List[str] = field(default_factory=list)

    @property
    def account(self) -> str:
        """The cloud account name this org provisions under."""
        return f"org:{self.key}"

    @property
    def is_fortune500(self) -> bool:
        return self.fortune500_rank is not None

    @property
    def is_global500(self) -> bool:
        return self.global500_rank is not None

    def cloud_assets(self) -> List[Asset]:
        """Assets backed by cloud resources."""
        return [a for a in self.assets if a.kind != AssetKind.SELF_HOSTED]

    def dangling_assets(self) -> List[Asset]:
        """Assets whose record currently dangles."""
        return [a for a in self.assets if a.is_dangling]
