"""Population generation: organizations, domains and initial assets.

Reproduces the structure of the paper's search space (Section 3.1):
enterprises with Fortune 500 / Global 500 ranks, universities with QS
ranks, government domains and Tranco-popular sites; TLDs distributed as
in Table 6 (com-dominant with a long tail); WHOIS ages skewed old
(98.5% of hijacked SLDs were older than a year, most over a decade —
Figure 18); ~2% CAA deployment (Section 5.6.2); and a cloud-asset
portfolio per organization whose service mix follows Table 2.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from datetime import datetime, timedelta
from typing import Dict, List, Optional, Tuple

from repro.cloud.specs import NamingPolicy, spec_by_key
from repro.dns.records import RRType, ResourceRecord, caa_rdata
from repro.net.addresses import IPv4Pool
from repro.obs import OBS
from repro.pki.ca import IssuanceError
from repro.web.server import dedicated_server
from repro.web.site import StaticSite
from repro.whois.registrars import pick_registrar
from repro.world.internet import Internet
from repro.world.organizations import Asset, AssetKind, Organization, OrgKind
from repro.world.sectors import asset_multiplier, pick_sector

#: Cloud service mix for CNAME assets, shaped like Table 2's monitored
#: counts: Azure Web Apps and S3 dominate.
DEFAULT_SERVICE_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    ("azure-web-app", 0.30),
    ("aws-s3-static", 0.24),
    ("aws-elastic-beanstalk", 0.09),
    ("azure-traffic-manager", 0.06),
    ("azure-cloudapp-legacy", 0.05),
    ("azure-cdn", 0.06),
    ("azure-cloudapp-regional", 0.06),
    ("azure-sip-web-app", 0.01),
    ("heroku-app", 0.05),
    ("pantheon-site", 0.015),
    ("netlify-app", 0.02),
    ("gcp-appspot", 0.045),
    ("cloudflare-lb", 0.02),
)

_SUBDOMAIN_WORDS = (
    "app", "api", "portal", "shop", "blog", "events", "careers", "mail",
    "dev", "staging", "test", "cdn", "static", "docs", "support", "news",
    "m", "intranet", "survey", "promo", "campaign", "store", "beta",
    "partners", "learn", "community", "status", "help", "secure", "my",
)

_COMPANY_SYLLABLES = (
    "vel", "nor", "tek", "lum", "cor", "dax", "mir", "sol", "quan", "ar",
    "zen", "hal", "ver", "om", "syn", "bal", "tri", "neo", "kap", "for",
)

_COMPANY_SUFFIXES = ("Industries", "Group", "Corp", "Systems", "Holdings",
                     "Energy", "Motors", "Labs", "Global", "Partners")

_UNIVERSITY_CITIES = (
    "Ashford", "Brookfield", "Calderon", "Drayton", "Eastvale", "Farnham",
    "Glenwood", "Halstead", "Irvington", "Jasper", "Kingsford", "Lakemont",
    "Marlowe", "Northgate", "Oakhurst", "Pinecrest", "Quarry", "Rosedale",
    "Stanton", "Thornbury", "Underwood", "Valemont", "Westbrook", "Yardley",
)

_GOV_AGENCIES = (
    "treasury", "transport", "health", "energy", "labor", "justice",
    "commerce", "education", "agriculture", "interior", "revenue",
    "customs", "statistics", "environment", "housing", "defense",
)

#: TLD mix per org kind, loosely Table 6-shaped.
_ENTERPRISE_TLDS = (("com", 0.70), ("net", 0.06), ("org", 0.04), ("de", 0.05),
                    ("co.uk", 0.05), ("com.au", 0.03), ("com.br", 0.02),
                    ("ca", 0.02), ("nl", 0.015), ("co.jp", 0.015), ("co", 0.01))
_UNIVERSITY_TLDS = (("edu", 0.55), ("ac.uk", 0.15), ("edu.au", 0.10),
                    ("ca", 0.08), ("de", 0.07), ("nl", 0.05))
_POPULAR_TLDS = (("com", 0.68), ("org", 0.10), ("net", 0.09), ("co", 0.05),
                 ("jp", 0.04), ("de", 0.04))


@dataclass
class PopulationConfig:
    """Scale and behaviour knobs for world generation."""

    n_enterprises: int = 120
    n_universities: int = 40
    n_government: int = 40
    n_popular: int = 100
    mean_assets: Dict[str, float] = field(
        default_factory=lambda: {
            OrgKind.ENTERPRISE.value: 11.0,
            OrgKind.UNIVERSITY.value: 6.0,
            OrgKind.GOVERNMENT.value: 4.0,
            OrgKind.POPULAR_SITE.value: 6.0,
        }
    )
    cloud_cname_share: float = 0.55
    cloud_a_share: float = 0.10
    certificate_rate: float = 0.14
    #: Share of orgs running managed multi-SAN/wildcard certificates.
    managed_cert_rate: float = 0.25
    hsts_rate: float = 0.16
    caa_rate: float = 0.02
    caa_paid_only_rate: float = 0.004
    #: Share of popular sites that are registrar-parked domains.
    parked_share: float = 0.08
    #: Share of orgs whose www record is a CNAME to a cloud resource
    #: (the source of the paper's SLD-level hijacks, Figure 5).
    www_cloud_share: float = 0.12
    service_weights: Tuple[Tuple[str, float], ...] = DEFAULT_SERVICE_WEIGHTS
    #: CIDR space organizations host their own servers in.
    self_hosted_cidrs: Tuple[str, ...] = ("198.18.0.0/15",)


class PopulationBuilder:
    """Creates organizations with registered domains and live assets."""

    def __init__(self, internet: Internet):
        self._internet = internet
        self._rng: random.Random = internet.streams.get("population")
        self._self_pool: Optional[IPv4Pool] = None
        self._org_serial = 0

    def build(self, config: PopulationConfig, at: datetime) -> List[Organization]:
        """Generate the full initial population at simulated time ``at``."""
        self._self_pool = IPv4Pool(config.self_hosted_cidrs)
        organizations: List[Organization] = []
        for index in range(config.n_enterprises):
            organizations.append(self._build_enterprise(index, config, at))
        for index in range(config.n_universities):
            organizations.append(self._build_university(index, config, at))
        for index in range(config.n_government):
            organizations.append(self._build_government(index, config, at))
        for index in range(config.n_popular):
            organizations.append(self._build_popular(index, config, at))
        self._assign_tranco_ranks(organizations)
        return organizations

    # -- per-kind builders ------------------------------------------------------

    def _build_enterprise(
        self, index: int, config: PopulationConfig, at: datetime
    ) -> Organization:
        name = self._company_name()
        org = self._new_org(
            name=name,
            kind=OrgKind.ENTERPRISE,
            tld=self._pick_tld(_ENTERPRISE_TLDS),
            country=self._rng.choice(("US", "US", "US", "GB", "DE", "JP", "FR", "CN")),
            at=at,
            config=config,
        )
        org.sector = pick_sector(self._rng)
        if index < config.n_enterprises // 2:
            org.fortune500_rank = index + 1
        if self._rng.random() < 0.4:
            org.global500_rank = index + 1 + self._rng.randrange(20)
        count = self._asset_count(config, org)
        self._populate_assets(org, count, config, at)
        return org

    def _build_university(
        self, index: int, config: PopulationConfig, at: datetime
    ) -> Organization:
        city = _UNIVERSITY_CITIES[index % len(_UNIVERSITY_CITIES)]
        suffix = "" if index < len(_UNIVERSITY_CITIES) else str(index)
        org = self._new_org(
            name=f"University of {city}{suffix}",
            kind=OrgKind.UNIVERSITY,
            tld=self._pick_tld(_UNIVERSITY_TLDS),
            country=self._rng.choice(("US", "US", "GB", "AU", "CA", "DE", "NL")),
            at=at,
            config=config,
            label=f"{city.lower()}{suffix}-university",
        )
        org.qs_rank = index * 7 + 1 + self._rng.randrange(6)
        self._populate_assets(org, self._asset_count(config, org), config, at)
        return org

    def _build_government(
        self, index: int, config: PopulationConfig, at: datetime
    ) -> Organization:
        agency = _GOV_AGENCIES[index % len(_GOV_AGENCIES)]
        suffix = "" if index < len(_GOV_AGENCIES) else str(index)
        org = self._new_org(
            name=f"Department of {agency.title()}{suffix}",
            kind=OrgKind.GOVERNMENT,
            tld="gov",
            country="US",
            at=at,
            config=config,
            label=f"{agency}{suffix}",
        )
        self._populate_assets(org, self._asset_count(config, org), config, at)
        return org

    def _build_popular(
        self, index: int, config: PopulationConfig, at: datetime
    ) -> Organization:
        name = self._company_name(word_count=2)
        parked = self._rng.random() < config.parked_share
        org = self._new_org(
            name=name,
            kind=OrgKind.POPULAR_SITE,
            tld=self._pick_tld(_POPULAR_TLDS),
            country=self._rng.choice(("US", "US", "GB", "JP", "DE", "BR", "IN")),
            at=at,
            config=config,
            # Parked domains are held and managed by a single parking
            # operator — the shared registrar/owner the rule-out keys on.
            registrar="SedoPark Domains" if parked else None,
            owner="SedoPark Parking Services" if parked else None,
        )
        org.is_parked = parked
        self._populate_assets(org, self._asset_count(config, org), config, at)
        return org

    # -- shared construction steps --------------------------------------------------

    def _new_org(
        self,
        name: str,
        kind: OrgKind,
        tld: str,
        country: str,
        at: datetime,
        config: Optional[PopulationConfig] = None,
        label: Optional[str] = None,
        registrar: Optional[str] = None,
        owner: Optional[str] = None,
    ) -> Organization:
        config = config or PopulationConfig()
        self._org_serial += 1
        key = label or name.lower().replace(" ", "-").replace(".", "")
        key = f"{key}-{self._org_serial}"
        domain = f"{key}.{tld}"
        org = Organization(
            key=key, display_name=name, kind=kind, domain=domain, country=country
        )
        created = self._domain_creation_date(at)
        self._internet.whois.register(
            domain,
            owner=owner or name,
            registrar=registrar or pick_registrar(self._rng),
            created_at=created,
        )
        zone = self._internet.zones.create_zone(domain)
        apex_site = StaticSite()
        self._install_apex(org, apex_site, at, config)
        ip = self._self_pool.allocate(self._rng)
        server = dedicated_server(org.display_name, apex_site)
        self._internet.network.bind(ip, server)
        server.ip = ip
        zone.add(ResourceRecord(name=domain, rtype=RRType.A, rdata=ip), at)
        if self._rng.random() < config.www_cloud_share:
            # Some orgs host their www on a cloud resource — when that
            # record dangles, the hijack lands at SLD level (Figure 5's
            # 1,565 of 17,698).
            asset = self._add_cloud_cname_asset(org, f"www.{domain}", config, at)
            org.assets.append(asset)
            self._internet.resolver.resolve_a_with_chain(f"www.{domain}", at=at)
        else:
            zone.add(ResourceRecord(name=f"www.{domain}", rtype=RRType.A, rdata=ip), at)
        self._maybe_add_caa(org, at, config)
        self._maybe_issue_managed_certificate(org, at, config)
        return org

    def _install_apex(
        self, org: Organization, site: StaticSite, at: datetime, config: PopulationConfig
    ) -> None:
        if org.kind == OrgKind.UNIVERSITY:
            doc = self._internet.benign_content.university_index(org.display_name)
        else:
            doc = self._internet.benign_content.corporate_index(
                org.display_name, org.sector or "services"
            )
        site.put_index(doc.render())
        if self._rng.random() < config.hsts_rate:
            site.default_headers["Strict-Transport-Security"] = "max-age=31536000"

    def _maybe_add_caa(
        self, org: Organization, at: datetime, config: PopulationConfig
    ) -> None:
        roll = self._rng.random()
        zone = self._internet.zones.get_zone(org.domain)
        if roll < config.caa_paid_only_rate:
            zone.add(
                ResourceRecord(org.domain, RRType.CAA, caa_rdata("issue", "digicert.com")),
                at,
            )
        elif roll < config.caa_rate:
            zone.add(
                ResourceRecord(org.domain, RRType.CAA, caa_rdata("issue", "letsencrypt.org")),
                at,
            )

    def _maybe_issue_managed_certificate(
        self, org: Organization, at: datetime, config: PopulationConfig
    ) -> None:
        """Managed multi-SAN/wildcard issuance via DNS validation.

        Populates the legitimate certificate series of Figure 20; the
        SANs are remembered on the org so the lifecycle engine renews
        them periodically.
        """
        if self._rng.random() >= config.managed_cert_rate:
            return
        if self._rng.random() < 0.5:
            sans = [f"*.{org.domain}", org.domain]
        else:
            sans = [org.domain, f"www.{org.domain}", f"mail.{org.domain}"]
        ca_name = self._rng.choice(("Let's Encrypt", "DigiCert", "ZeroSSL"))
        owner = self._internet.whois.owner_of(org.domain)
        try:
            self._internet.cas[ca_name].issue_dns_validated(
                sans, owner, self._internet.whois.owner_of, at
            )
            org.managed_cert_sans = sans
        except IssuanceError:
            # CAA may exclude this CA; the org simply has no cert.  Any
            # other exception is a real bug and must propagate.
            OBS.metrics.inc("pki.issuance_refused", path="managed")

    def _populate_assets(
        self, org: Organization, count: int, config: PopulationConfig, at: datetime
    ) -> None:
        for _ in range(count):
            self.add_asset(org, config, at)

    # -- asset creation (also used by the lifecycle engine for growth) ---------------

    def add_asset(
        self, org: Organization, config: PopulationConfig, at: datetime
    ) -> Asset:
        """Create one new subdomain asset for ``org`` at time ``at``."""
        fqdn = self._new_subdomain(org)
        roll = self._rng.random()
        if roll < config.cloud_cname_share:
            asset = self._add_cloud_cname_asset(org, fqdn, config, at)
        elif roll < config.cloud_cname_share + config.cloud_a_share:
            asset = self._add_cloud_a_asset(org, fqdn, at)
        else:
            asset = self._add_self_hosted_asset(org, fqdn, at)
        org.assets.append(asset)
        # Warm passive DNS: real subdomains get resolved by real users.
        self._internet.resolver.resolve_a_with_chain(fqdn, at=at)
        return asset

    def _add_cloud_cname_asset(
        self, org: Organization, fqdn: str, config: PopulationConfig, at: datetime
    ) -> Asset:
        service_key = self._pick_service(config)
        spec = spec_by_key(service_key)
        provider = self._internet.catalog.provider(spec.provider)
        label = fqdn.split(".")[0]
        label = f"{org.key}-{label}"
        attempt = 0
        while not provider.is_name_available(service_key, label, at):
            attempt += 1
            label = f"{label}{attempt}"
        resource = provider.provision(service_key, label, owner=org.account, at=at)
        zone = self._internet.zones.get_zone(org.domain)
        zone.add(
            ResourceRecord(name=fqdn, rtype=RRType.CNAME, rdata=resource.generated_fqdn),
            at,
        )
        if spec.naming in (NamingPolicy.FREETEXT, NamingPolicy.RANDOM_NAME):
            provider.add_custom_domain(resource, fqdn, at)
        doc = self._internet.benign_content.service_page(
            org.display_name, fqdn.split(".")[0]
        )
        resource.site.put_index(doc.render())
        asset = Asset(
            fqdn=fqdn, kind=AssetKind.CLOUD_CNAME, org_key=org.key,
            created_at=at, resource=resource, service_key=service_key,
        )
        if self._rng.random() < config.certificate_rate:
            try:
                self._internet.issue_certificate(resource, fqdn, at)
                asset.has_certificate = True
            except IssuanceError:
                # CAA may forbid the free CA; owners give up, as
                # observed.  Real bugs propagate.
                OBS.metrics.inc("pki.issuance_refused", path="asset")
        return asset

    def _add_cloud_a_asset(self, org: Organization, fqdn: str, at: datetime) -> Asset:
        service_key = self._rng.choice(("aws-ec2-ip", "gcp-vm-ip"))
        spec = spec_by_key(service_key)
        provider = self._internet.catalog.provider(spec.provider)
        resource = provider.provision(
            service_key, f"{org.key}-{fqdn.split('.')[0]}", owner=org.account, at=at
        )
        zone = self._internet.zones.get_zone(org.domain)
        zone.add(ResourceRecord(name=fqdn, rtype=RRType.A, rdata=resource.ip), at)
        doc = self._internet.benign_content.service_page(
            org.display_name, fqdn.split(".")[0]
        )
        resource.site.put_index(doc.render())
        return Asset(
            fqdn=fqdn, kind=AssetKind.CLOUD_A, org_key=org.key,
            created_at=at, resource=resource, service_key=service_key,
        )

    def _add_self_hosted_asset(self, org: Organization, fqdn: str, at: datetime) -> Asset:
        ip = self._self_pool.allocate(self._rng)
        site = StaticSite()
        doc = self._internet.benign_content.service_page(
            org.display_name, fqdn.split(".")[0]
        )
        site.put_index(doc.render())
        server = dedicated_server(org.display_name, site)
        self._internet.network.bind(ip, server)
        server.ip = ip
        zone = self._internet.zones.get_zone(org.domain)
        zone.add(ResourceRecord(name=fqdn, rtype=RRType.A, rdata=ip), at)
        return Asset(
            fqdn=fqdn, kind=AssetKind.SELF_HOSTED, org_key=org.key, created_at=at
        )

    # -- helpers --------------------------------------------------------------------

    def _asset_count(self, config: PopulationConfig, org: Organization) -> int:
        mean = config.mean_assets[org.kind.value]
        if org.sector:
            mean *= asset_multiplier(org.sector)
        # Geometric-ish spread around the mean, minimum one asset.
        return max(1, int(self._rng.expovariate(1.0 / mean)) + 1)

    def _new_subdomain(self, org: Organization) -> str:
        existing = {a.fqdn for a in org.assets}
        for word in self._shuffled(_SUBDOMAIN_WORDS):
            fqdn = f"{word}.{org.domain}"
            if fqdn not in existing:
                return fqdn
        index = len(org.assets)
        while True:
            fqdn = f"svc{index}.{org.domain}"
            if fqdn not in existing:
                return fqdn
            index += 1

    def _shuffled(self, items) -> List[str]:
        out = list(items)
        self._rng.shuffle(out)
        return out

    def _pick_service(self, config: PopulationConfig) -> str:
        keys = [key for key, _ in config.service_weights]
        weights = [weight for _, weight in config.service_weights]
        return self._rng.choices(keys, weights=weights, k=1)[0]

    def _pick_tld(self, table) -> str:
        tlds = [tld for tld, _ in table]
        weights = [weight for _, weight in table]
        return self._rng.choices(tlds, weights=weights, k=1)[0]

    def _company_name(self, word_count: int = 1) -> str:
        word = "".join(self._rng.choice(_COMPANY_SYLLABLES) for _ in range(2)).title()
        if word_count == 2:
            second = "".join(self._rng.choice(_COMPANY_SYLLABLES) for _ in range(2)).title()
            return f"{word}{second}"
        return f"{word} {self._rng.choice(_COMPANY_SUFFIXES)}"

    def _domain_creation_date(self, at: datetime) -> datetime:
        """Mostly decades-old domains; ~1.5% younger than a year."""
        roll = self._rng.random()
        if roll < 0.015:
            days = self._rng.randrange(30, 365)
        elif roll < 0.15:
            days = self._rng.randrange(365, 5 * 365)
        elif roll < 0.45:
            days = self._rng.randrange(5 * 365, 12 * 365)
        else:
            days = self._rng.randrange(12 * 365, 26 * 365)
        return at - timedelta(days=days)

    def _assign_tranco_ranks(self, organizations: List[Organization]) -> None:
        """Give ~70% of organizations a Tranco rank, popularity-ordered."""
        ranked = [org for org in organizations if self._rng.random() < 0.7]
        self._rng.shuffle(ranked)
        # Popular sites and big enterprises cluster at the top.
        ranked.sort(
            key=lambda org: (
                0 if org.kind == OrgKind.POPULAR_SITE else 1,
                org.fortune500_rank or 10_000,
            )
        )
        rank = 0
        for org in ranked:
            rank += 1 + self._rng.randrange(1, 900)
            org.tranco_rank = rank
