"""Registrar population with realistic market concentration."""

from __future__ import annotations

import random
from typing import List, Tuple

#: (registrar name, relative market share).  Shares are loosely modelled
#: on the real registrar market: a few giants and a long tail.
DEFAULT_REGISTRARS: Tuple[Tuple[str, float], ...] = (
    ("GoDaddy", 0.22),
    ("Namecheap", 0.11),
    ("Tucows", 0.08),
    ("Network Solutions", 0.07),
    ("MarkMonitor", 0.06),
    ("CSC Corporate Domains", 0.06),
    ("Gandi", 0.05),
    ("1&1 IONOS", 0.05),
    ("OVH", 0.04),
    ("Google Domains", 0.04),
    ("Alibaba Cloud", 0.03),
    ("NameSilo", 0.03),
    ("Porkbun", 0.03),
    ("Dynadot", 0.03),
    ("EuroDNS", 0.02),
    ("Hover", 0.02),
    ("Register.com", 0.02),
    ("DreamHost", 0.02),
    ("Hostinger", 0.01),
    ("Epik", 0.01),
)

_NAMES: List[str] = [name for name, _ in DEFAULT_REGISTRARS]
_WEIGHTS: List[float] = [weight for _, weight in DEFAULT_REGISTRARS]


def pick_registrar(rng: random.Random) -> str:
    """Draw a registrar according to market share."""
    return rng.choices(_NAMES, weights=_WEIGHTS, k=1)[0]
