"""Domain registration (WHOIS) substrate.

Supplies the three fields the paper's analyses read from WHOIS:
creation date (domain age, Figure 18), registrar and owner (the
registrar-diversity rule-out of benign changes, Figure 10).
"""

from repro.whois.registry import DomainRegistry, WhoisRecord
from repro.whois.registrars import DEFAULT_REGISTRARS, pick_registrar

__all__ = ["DomainRegistry", "WhoisRecord", "DEFAULT_REGISTRARS", "pick_registrar"]
