"""The second-level-domain registration database."""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import Dict, List, Optional

from repro.dns.names import Name, normalize_name, registered_domain


@dataclass(frozen=True)
class WhoisRecord:
    """WHOIS data for one registered domain."""

    domain: Name
    owner: str
    registrar: str
    created_at: datetime

    def age_years(self, at: datetime) -> float:
        """Domain age in (fractional) years at time ``at``."""
        return max(0.0, (at - self.created_at).days / 365.25)


class DomainRegistry:
    """Registrations keyed by second-level domain."""

    def __init__(self) -> None:
        self._records: Dict[Name, WhoisRecord] = {}

    def register(
        self, domain: Name, owner: str, registrar: str, created_at: datetime
    ) -> WhoisRecord:
        """Register ``domain``; double registration is an error."""
        normalized = normalize_name(domain)
        if normalized in self._records:
            raise ValueError(f"{normalized} is already registered")
        record = WhoisRecord(
            domain=normalized, owner=owner, registrar=registrar, created_at=created_at
        )
        self._records[normalized] = record
        return record

    def lookup(self, name: Name) -> Optional[WhoisRecord]:
        """WHOIS for the registered domain containing ``name``.

        Accepts any FQDN: the query is made at its registrable domain,
        as real WHOIS clients do for subdomains.
        """
        base = registered_domain(name)
        if base is None:
            base = normalize_name(name)
        return self._records.get(base)

    def registrar_of(self, name: Name) -> Optional[str]:
        record = self.lookup(name)
        return record.registrar if record else None

    def owner_of(self, name: Name) -> Optional[str]:
        record = self.lookup(name)
        return record.owner if record else None

    def creation_date_of(self, name: Name) -> Optional[datetime]:
        record = self.lookup(name)
        return record.created_at if record else None

    def all_records(self) -> List[WhoisRecord]:
        """Every registration, sorted by domain."""
        return [self._records[k] for k in sorted(self._records)]

    def __len__(self) -> int:
        return len(self._records)
