"""Self-healing supervision of the sharded sweep.

The unsupervised fork protocol (:func:`~repro.parallel.shard.run_shards_forked`)
treats any worker failure as fatal: one SIGKILL'd child aborts the
whole sweep, and a hung child blocks the parent forever in a blocking
``waitpid``.  A three-year weekly campaign cannot work that way.  This
module wraps the same child protocol with real failure handling:

* **deadlines** — each worker gets a wall-clock budget; the parent
  drains its pipe through ``select`` with a timeout and reaps expired
  workers with SIGKILL plus a ``waitpid(WNOHANG)`` poll loop, so a hung
  worker costs one deadline, never the sweep;
* **death detection** — a worker that dies by signal, exits nonzero, or
  truncates its result pickle is recognized and described with its
  shard identity (index plus FQDN slice bounds), not just a pid;
* **bounded re-dispatch** — a failed span is re-forked up to a retry
  budget; transient faults (a crashed or hung worker) clear on retry;
* **poison isolation via bisection** — a span that keeps failing is
  split in half and each half retried, recursively, until the single
  offending FQDN is isolated and quarantined into a dead-letter record
  with the failure reason.  One pathological subject costs one name,
  not the sweep.

Recovered results are stitched back **in original shard order** (a
bisected span's halves concatenate left-to-right), so the executor's
deterministic merge — and therefore the exported bytes — are identical
to a crash-free run, modulo the quarantined names.

Fault injection: :meth:`~repro.faults.plan.FaultPlan.worker_fault`
draws ``crash``/``hang`` decisions from per-shard RNG streams on a
span's *first* dispatch only, and :meth:`~repro.faults.plan.FaultPlan.poison_hit`
names make the worker die on *every* attempt — so random faults are
always survivable while poison deterministically reaches quarantine,
all without a single real network or scheduler dependency.
"""

from __future__ import annotations

import errno
import os
import pickle
import select
import signal
import struct
import time
import traceback
from dataclasses import dataclass, field
from datetime import datetime
from typing import List, Optional, Sequence, Tuple

from repro.core.monitoring import ExtractionCache, WeeklyMonitor
from repro.dns.names import Name
from repro.obs import OBS
from repro.parallel.shard import (
    ShardResult,
    _write_all,
    fork_with_pipe,
    run_shard,
    shard_bounds,
    shard_ident,
)

_LENGTH = struct.Struct("<Q")


class WorkerFailure(Exception):
    """One span attempt failed; ``kind`` classifies how.

    ``kind`` is ``"crash"`` (death by signal / nonzero exit / truncated
    or corrupt payload), ``"hang"`` (deadline expired) or ``"error"``
    (the worker itself reported a sampling exception).
    """

    def __init__(self, reason: str, kind: str = "crash"):
        super().__init__(reason)
        self.kind = kind


@dataclass
class SupervisorConfig:
    """Failure-handling knobs of one supervised sweep."""

    #: Wall-clock budget per worker, measured from its fork.  ``None``
    #: waits indefinitely (worker *death* is still detected via pipe
    #: EOF; only true hangs need a deadline).
    shard_deadline: Optional[float] = None
    #: Re-dispatches of one span after its first failure, before the
    #: span is bisected (or, at one name, quarantined).  Must be >= 1
    #: so a once-per-span random fault can never reach quarantine.
    max_shard_retries: int = 2
    #: How long to poll ``waitpid(WNOHANG)`` for a child that already
    #: closed its pipe before escalating to SIGKILL.
    reap_grace: float = 2.0

    def __post_init__(self) -> None:
        if self.max_shard_retries < 1:
            raise ValueError(
                f"max_shard_retries must be >= 1, got {self.max_shard_retries}"
            )


@dataclass
class DeadLetter:
    """One quarantined FQDN: the poison bisection's terminal record."""

    fqdn: Name
    shard_index: int
    reason: str


@dataclass
class SupervisedSweep:
    """Everything one supervised sweep produced.

    ``results`` holds exactly one :class:`ShardResult` per original
    shard, in shard order, with retried/bisected spans already stitched
    back together; ``quarantined`` lists the names bisection isolated.
    """

    results: List[ShardResult] = field(default_factory=list)
    quarantined: List[DeadLetter] = field(default_factory=list)
    worker_crashes: int = 0
    worker_hangs: int = 0
    shard_retries: int = 0


@dataclass
class _Worker:
    """Parent-side handle on one forked span attempt."""

    pid: int
    read_fd: int
    started: float
    index: int
    bounds: Tuple[int, int]


def _describe_exit(status: int) -> str:
    if os.WIFSIGNALED(status):
        return f"killed by signal {os.WTERMSIG(status)}"
    if os.WIFEXITED(status):
        code = os.WEXITSTATUS(status)
        return f"exited {code}" if code else "exited 0"
    return f"wait status {status}"  # pragma: no cover - stopped/continued


def _reap(pid: int, grace: float) -> int:
    """Non-blocking reap: ``WNOHANG`` poll, then SIGKILL escalation.

    Never blocks the sweep on a child that refuses to die: after
    ``grace`` seconds of polling, the child is SIGKILL'd and the wait
    repeats (SIGKILL is not maskable, so this terminates).
    """
    deadline = time.monotonic() + grace
    killed = False
    while True:
        try:
            done, status = os.waitpid(pid, os.WNOHANG)
        except ChildProcessError:
            return 0
        if done == pid:
            return status
        if not killed and time.monotonic() >= deadline:
            _kill(pid)
            killed = True
        time.sleep(0.005)


def _kill(pid: int) -> None:
    try:
        os.kill(pid, signal.SIGKILL)
    except ProcessLookupError:
        pass


def _send_payload(write_fd: int, payload: bytes) -> None:
    """Child-side result send (module-level so tests can interpose)."""
    _write_all(write_fd, _LENGTH.pack(len(payload)) + payload)


def _simulate_worker_fault(fault: Optional[str], plan, fqdns: Sequence[Name]) -> None:
    """Act out an injected process fault *inside the forked child*.

    A crash is a real ``SIGKILL`` to self — the parent sees pipe EOF
    and a signal exit status, exactly like an OOM kill.  A hang parks
    the child in a sleep loop until the supervisor's deadline reaps it.
    Poison subjects crash the worker on every attempt.
    """
    if plan is not None and plan.poison_hit(fqdns) is not None:
        _kill(os.getpid())
    if fault == "crash":
        _kill(os.getpid())
    elif fault == "hang":
        while True:  # pragma: no cover - killed by the supervisor
            time.sleep(0.05)


def _spawn(
    monitor: WeeklyMonitor,
    index: int,
    fqdns: Sequence[Name],
    bounds: Tuple[int, int],
    at: datetime,
    cache: Optional[ExtractionCache],
    fault: Optional[str],
) -> _Worker:
    """Fork one span attempt; the child never returns."""
    pid, read_fd, write_fd = fork_with_pipe()
    if pid == 0:
        os.close(read_fd)
        exit_code = 0
        try:
            _simulate_worker_fault(fault, monitor.client.fault_plan, fqdns)
            try:
                result = run_shard(monitor, index, fqdns, at, cache, forked=True)
                payload = pickle.dumps(
                    ("ok", result), protocol=pickle.HIGHEST_PROTOCOL
                )
            except BaseException:
                payload = pickle.dumps(
                    (
                        "err",
                        f"{shard_ident(index, bounds)}:\n{traceback.format_exc()}",
                    ),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            _send_payload(write_fd, payload)
            os.close(write_fd)
        except BaseException:
            exit_code = 1
        os._exit(exit_code)
    os.close(write_fd)
    return _Worker(
        pid=pid, read_fd=read_fd, started=time.monotonic(), index=index,
        bounds=bounds,
    )


def _collect(worker: _Worker, config: SupervisorConfig) -> ShardResult:
    """Drain one worker's pipe within its deadline; raise on failure.

    The read loop is ``select``-driven so a silent worker costs at most
    the remaining deadline, and the worker is *always* reaped — by the
    ``WNOHANG`` poll loop on the happy path, by SIGKILL on expiry.
    """
    ident = f"{shard_ident(worker.index, worker.bounds)} worker pid {worker.pid}"
    deadline = (
        worker.started + config.shard_deadline
        if config.shard_deadline is not None
        else None
    )
    buffer = bytearray()
    length: Optional[int] = None
    try:
        while True:
            if deadline is not None:
                timeout = deadline - time.monotonic()
                if timeout <= 0:
                    _kill(worker.pid)
                    status = _reap(worker.pid, config.reap_grace)
                    raise WorkerFailure(
                        f"{ident}: no result within the "
                        f"{config.shard_deadline:g}s deadline; "
                        f"killed ({_describe_exit(status)})",
                        kind="hang",
                    )
            else:
                timeout = None
            try:
                ready, _, _ = select.select([worker.read_fd], [], [], timeout)
            except OSError as error:  # pragma: no cover - EINTR on old kernels
                if error.errno == errno.EINTR:
                    continue
                raise
            if not ready:
                continue
            chunk = os.read(worker.read_fd, 1 << 20)
            if not chunk:
                status = _reap(worker.pid, config.reap_grace)
                raise WorkerFailure(
                    f"{ident}: {_describe_exit(status)} after sending "
                    f"{len(buffer)} of "
                    f"{'?' if length is None else length + _LENGTH.size} "
                    f"result bytes",
                    kind="crash",
                )
            buffer.extend(chunk)
            if length is None and len(buffer) >= _LENGTH.size:
                (length,) = _LENGTH.unpack_from(buffer)
            if length is not None and len(buffer) >= _LENGTH.size + length:
                break
    finally:
        os.close(worker.read_fd)
    _reap(worker.pid, config.reap_grace)
    try:
        kind, value = pickle.loads(bytes(buffer[_LENGTH.size:_LENGTH.size + length]))
    except Exception as error:
        raise WorkerFailure(f"{ident}: corrupt result payload ({error})", kind="crash")
    if kind == "err":
        raise WorkerFailure(str(value), kind="error")
    return value


def _run_inline(
    monitor: WeeklyMonitor,
    index: int,
    fqdns: Sequence[Name],
    bounds: Tuple[int, int],
    at: datetime,
    cache: Optional[ExtractionCache],
    fault: Optional[str],
) -> ShardResult:
    """One span attempt without fork (single CPU / no ``os.fork``).

    Injected faults raise *before* any sampling, so a simulated failed
    attempt has zero parent-state side effects; a genuine mid-sample
    exception additionally rolls the monitor/client counters back to
    their pre-attempt values (best effort — the data it mutated on the
    way down is exactly what a real crashed inline process would have
    lost anyway).
    """
    plan = monitor.client.fault_plan
    ident = shard_ident(index, bounds)
    if plan is not None and plan.poison_hit(fqdns) is not None:
        raise WorkerFailure(f"{ident}: worker crashed mid-shard (inline)", kind="crash")
    if fault == "crash":
        raise WorkerFailure(f"{ident}: worker crashed mid-shard (inline)", kind="crash")
    if fault == "hang":
        raise WorkerFailure(
            f"{ident}: worker hung; reaped at deadline (inline)", kind="hang"
        )
    client = monitor.client
    snapshot = (
        monitor.samples_taken,
        monitor.sitemap_fetches,
        client.retries_total,
        client.backoff_seconds_total,
    )
    try:
        return run_shard(monitor, index, fqdns, at, cache, forked=False)
    except Exception:
        (
            monitor.samples_taken,
            monitor.sitemap_fetches,
            client.retries_total,
            client.backoff_seconds_total,
        ) = snapshot
        raise WorkerFailure(
            f"{ident}:\n{traceback.format_exc()}", kind="error"
        )


def _combine(left: ShardResult, right: ShardResult) -> ShardResult:
    """Stitch a bisected span's halves back into one in-order result."""
    merged = ShardResult(index=left.index, size=left.size + right.size)
    merged.sampled = left.sampled + right.sampled
    merged.failures = left.failures + right.failures
    merged.samples_taken = left.samples_taken + right.samples_taken
    merged.sitemap_fetches = left.sitemap_fetches + right.sitemap_fetches
    merged.retries = left.retries + right.retries
    merged.backoff_seconds = left.backoff_seconds + right.backoff_seconds
    merged.breaker_trips = left.breaker_trips + right.breaker_trips
    merged.injected = dict(left.injected)
    for kind, count in right.injected.items():
        merged.injected[kind] = merged.injected.get(kind, 0) + count
    merged.observations = left.observations + right.observations
    merged.new_html = {**left.new_html, **right.new_html}
    merged.new_sitemap = {**left.new_sitemap, **right.new_sitemap}
    merged.cache_hits = left.cache_hits + right.cache_hits
    merged.cache_misses = left.cache_misses + right.cache_misses
    merged.ledger_entries = {**left.ledger_entries, **right.ledger_entries}
    merged.wall_seconds = left.wall_seconds + right.wall_seconds
    # Bisected halves ran sequentially in separate workers: CPU sums,
    # peak RSS is whichever half's process grew larger.
    merged.cpu_seconds = left.cpu_seconds + right.cpu_seconds
    merged.peak_rss_kb = max(left.peak_rss_kb, right.peak_rss_kb)
    merged.fused = left.fused and right.fused
    if left.metrics is not None and right.metrics is not None:
        merged.metrics = left.metrics.merge(right.metrics)
    else:
        merged.metrics = left.metrics if left.metrics is not None else right.metrics
    merged.trace_events = left.trace_events + right.trace_events
    return merged


def _empty_result(index: int, size: int) -> ShardResult:
    return ShardResult(index=index, size=size)


class ShardSupervisor:
    """Drives one sweep's spans through attempt / retry / bisect."""

    def __init__(
        self,
        monitor: WeeklyMonitor,
        at: datetime,
        cache: Optional[ExtractionCache],
        config: SupervisorConfig,
        forked: bool,
    ):
        self.monitor = monitor
        self.at = at
        self.cache = cache
        self.config = config
        self.forked = forked
        self.plan = monitor.client.fault_plan
        self.outcome = SupervisedSweep()

    # -- bookkeeping ------------------------------------------------------

    def _draw_fault(self, shard_index: int) -> Optional[str]:
        if self.plan is None:
            return None
        return self.plan.worker_fault(shard_index)

    def _note_failure(self, failure: WorkerFailure) -> None:
        if failure.kind == "hang":
            self.outcome.worker_hangs += 1
            if OBS.enabled:
                OBS.metrics.inc("supervisor.worker_hangs")
        else:
            self.outcome.worker_crashes += 1
            if OBS.enabled:
                OBS.metrics.inc("supervisor.worker_crashes")

    # -- span execution ---------------------------------------------------

    def _attempt(
        self,
        index: int,
        fqdns: Sequence[Name],
        bounds: Tuple[int, int],
        fault: Optional[str],
    ) -> ShardResult:
        if self.forked:
            worker = _spawn(
                self.monitor, index, fqdns, bounds, self.at, self.cache, fault
            )
            return _collect(worker, self.config)
        return _run_inline(
            self.monitor, index, fqdns, bounds, self.at, self.cache, fault
        )

    def run_span(
        self,
        index: int,
        fqdns: Sequence[Name],
        bounds: Tuple[int, int],
        initial_failure: Optional[WorkerFailure] = None,
    ) -> ShardResult:
        """One span to completion: attempts, then bisection/quarantine.

        ``initial_failure`` is set when the span's first (concurrent)
        dispatch already failed — the retry budget picks up from there.
        Returns the span's results with every recoverable name sampled
        in input order; quarantined names are recorded on the outcome
        and simply absent from the result.
        """
        failure = initial_failure
        first_attempt = 0 if initial_failure is None else 1
        for attempt in range(first_attempt, self.config.max_shard_retries + 1):
            # Random worker faults are drawn once per span, on its
            # first dispatch; retries run fault-free so they always
            # converge.  Poison is consulted inside the worker on
            # every attempt — that is what bisection is for.
            fault = self._draw_fault(index) if attempt == 0 else None
            if attempt > 0:
                self.outcome.shard_retries += 1
                if OBS.enabled:
                    OBS.metrics.inc("supervisor.shard_retries")
            try:
                if attempt > 0:
                    with OBS.tracer.span(
                        "supervisor.redispatch", sim=self.at, shard=index,
                        attempt=attempt, size=len(fqdns),
                    ):
                        return self._attempt(index, fqdns, bounds, fault)
                return self._attempt(index, fqdns, bounds, fault)
            except WorkerFailure as error:
                self._note_failure(error)
                failure = error
        assert failure is not None
        if len(fqdns) == 1:
            self.outcome.quarantined.append(
                DeadLetter(fqdn=fqdns[0], shard_index=index, reason=str(failure))
            )
            if OBS.enabled:
                OBS.metrics.inc("supervisor.poison_quarantined")
            return _empty_result(index, len(fqdns))
        mid = len(fqdns) // 2
        start, end = bounds
        with OBS.tracer.span(
            "supervisor.bisect", sim=self.at, shard=index, size=len(fqdns),
        ):
            left = self.run_span(index, fqdns[:mid], (start, start + mid))
            right = self.run_span(index, fqdns[mid:], (start + mid, end))
        return _combine(left, right)


def run_shards_supervised(
    monitor: WeeklyMonitor,
    shards: List[List[Name]],
    at: datetime,
    cache: Optional[ExtractionCache],
    config: Optional[SupervisorConfig] = None,
    forked: bool = True,
) -> SupervisedSweep:
    """Run every shard under supervision; results in shard order.

    In ``forked`` mode all top-level spans launch concurrently (as the
    unsupervised protocol does) and are drained in shard order;
    recovery of any failed span — re-dispatch, then bisection — runs
    sequentially, which keeps the fault-stream draw order, and thus the
    whole storm, deterministic.  With ``forked=False`` every span runs
    inline with identical retry/bisect semantics (injected faults are
    raised instead of signalled).
    """
    config = config if config is not None else SupervisorConfig()
    supervisor = ShardSupervisor(monitor, at, cache, config, forked)
    bounds = shard_bounds(shards)
    outcome = supervisor.outcome
    if not forked:
        for index, shard in enumerate(shards):
            outcome.results.append(supervisor.run_span(index, shard, bounds[index]))
        return outcome
    workers: List[Tuple[int, _Worker]] = []
    for index, shard in enumerate(shards):
        fault = supervisor._draw_fault(index)
        workers.append(
            (index, _spawn(monitor, index, shard, bounds[index], at, cache, fault))
        )
    for index, worker in workers:
        try:
            outcome.results.append(_collect(worker, config))
        except WorkerFailure as failure:
            supervisor._note_failure(failure)
            outcome.results.append(
                supervisor.run_span(
                    index, shards[index], bounds[index], initial_failure=failure
                )
            )
    return outcome
