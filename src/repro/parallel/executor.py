"""Sweep executors: the serial baseline and the sharded parallel one.

A :class:`SweepExecutor` runs one weekly sweep of the monitored-FQDN
list and reduces it to a :class:`SweepReport`.  :class:`SerialExecutor`
is the seed pipeline's behaviour — one in-process pass through
``WeeklyMonitor.sweep_iter`` — and the golden-digest baseline.
:class:`ProcessExecutor` shards the list into contiguous slices, runs
each shard's sample+reduce in a forked worker against the copy-on-write
world, and merges the results **in shard order**: the snapshot store,
the changed-pairs list, the quarantine list and every counter see the
exact same sequence a serial sweep would have produced, so a parallel
run of a fault-free scenario exports byte-identical digests.

Under fault injection a parallel run is still fully deterministic —
the same seed and worker count always replay the same storm — but not
byte-identical to the *serial* chaos run: fault streams are sequential,
so sharding re-partitions the draw sequence, and breaker failure
streaks accumulate shard-locally.  See the determinism-under-sharding
contract in the README.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from datetime import datetime
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.monitoring import ExtractionCache, SnapshotFeatures, WeeklyMonitor
from repro.dns.names import Name
from repro.obs import OBS
from repro.parallel.shard import (
    ShardResult,
    fork_available,
    partition,
    run_shard,
    run_shards_forked,
)
from repro.parallel.supervisor import (
    DeadLetter,
    SupervisorConfig,
    run_shards_supervised,
)

ChangedPair = Tuple[SnapshotFeatures, Optional[SnapshotFeatures]]


def effective_cpus() -> int:
    """CPUs actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


@dataclass
class SweepReport:
    """One sweep's merged outcome: changes, failures and counters.

    Reports merge associatively (:meth:`merge`): lists concatenate in
    order and counters sum, so reducing per-shard reports left-to-right
    equals reducing any bracketing of them — the property that makes
    the shard-order merge well-defined.

    Two timing fields with different merge laws: ``cpu_seconds`` is
    the work actually done (sum of shard sampling time — sums under
    merge), while ``wall_seconds`` is elapsed time (concurrent shards
    overlap — max under merge).  Summing walls was the old bug: merging
    N concurrent shard reports inflated "elapsed" N-fold.
    """

    changed: List[ChangedPair] = field(default_factory=list)
    failures: List[Tuple[Name, str]] = field(default_factory=list)
    samples_taken: int = 0
    sitemap_fetches: int = 0
    retries: int = 0
    backoff_seconds: float = 0.0
    breaker_trips: int = 0
    injected: Dict[str, int] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    #: Names the supervisor's poison bisection quarantined this sweep,
    #: as (fqdn, reason) pairs in shard order.  Distinct from
    #: ``failures`` (retry-exhausted *samples*): a quarantined name
    #: never produced a sample at all — its worker died every attempt.
    quarantined: List[Tuple[Name, str]] = field(default_factory=list)
    worker_crashes: int = 0
    worker_hangs: int = 0
    shard_retries: int = 0
    workers: int = 1
    mode: str = "serial"
    shard_sizes: List[int] = field(default_factory=list)
    shard_walls: List[float] = field(default_factory=list)
    #: Elapsed time of the sweep (max under merge — concurrent parts
    #: overlap; the executor overwrites it with the true elapsed time).
    wall_seconds: float = 0.0
    #: Total sampling time across shards (sum under merge).
    cpu_seconds: float = 0.0

    @property
    def fqdns_swept(self) -> int:
        return self.samples_taken

    def merge(self, other: "SweepReport") -> "SweepReport":
        """A new report combining ``self`` then ``other`` (associative)."""
        merged_injected = dict(self.injected)
        for kind, count in other.injected.items():
            merged_injected[kind] = merged_injected.get(kind, 0) + count
        return SweepReport(
            changed=self.changed + other.changed,
            failures=self.failures + other.failures,
            samples_taken=self.samples_taken + other.samples_taken,
            sitemap_fetches=self.sitemap_fetches + other.sitemap_fetches,
            retries=self.retries + other.retries,
            backoff_seconds=self.backoff_seconds + other.backoff_seconds,
            breaker_trips=self.breaker_trips + other.breaker_trips,
            injected=merged_injected,
            cache_hits=self.cache_hits + other.cache_hits,
            cache_misses=self.cache_misses + other.cache_misses,
            quarantined=self.quarantined + other.quarantined,
            worker_crashes=self.worker_crashes + other.worker_crashes,
            worker_hangs=self.worker_hangs + other.worker_hangs,
            shard_retries=self.shard_retries + other.shard_retries,
            workers=max(self.workers, other.workers),
            mode=self.mode if self.mode == other.mode else "mixed",
            shard_sizes=self.shard_sizes + other.shard_sizes,
            shard_walls=self.shard_walls + other.shard_walls,
            wall_seconds=max(self.wall_seconds, other.wall_seconds),
            cpu_seconds=self.cpu_seconds + other.cpu_seconds,
        )


class SweepExecutor:
    """Strategy interface: run one weekly sweep over ``fqdns``."""

    workers: int = 1
    #: The most recent sweep's report (benchmarks and the profile
    #: report read timing fields off it).
    last_report: Optional[SweepReport] = None

    def sweep(
        self, monitor: WeeklyMonitor, fqdns: Sequence[Name], at: datetime
    ) -> SweepReport:
        raise NotImplementedError


class SerialExecutor(SweepExecutor):
    """The seed pipeline's sweep, verbatim: one in-process pass."""

    workers = 1

    def sweep(
        self, monitor: WeeklyMonitor, fqdns: Sequence[Name], at: datetime
    ) -> SweepReport:
        client = monitor.client
        plan = client.fault_plan
        samples0 = monitor.samples_taken
        sitemap0 = monitor.sitemap_fetches
        retries0 = client.retries_total
        backoff0 = client.backoff_seconds_total
        trips0 = client.breaker.trips if client.breaker is not None else 0
        injected0 = dict(plan.stats.injected) if plan is not None else {}
        started = time.perf_counter()
        failures: List[Tuple[Name, str]] = []
        changed: List[ChangedPair] = []
        for batch_changed in monitor.sweep_iter(fqdns, at, failures=failures):
            changed.extend(batch_changed)
        wall = time.perf_counter() - started
        report = SweepReport(
            changed=changed,
            failures=failures,
            samples_taken=monitor.samples_taken - samples0,
            sitemap_fetches=monitor.sitemap_fetches - sitemap0,
            retries=client.retries_total - retries0,
            backoff_seconds=client.backoff_seconds_total - backoff0,
            breaker_trips=(
                client.breaker.trips - trips0 if client.breaker is not None else 0
            ),
            workers=1,
            mode="serial",
            shard_sizes=[len(fqdns)],
            shard_walls=[wall],
            wall_seconds=wall,
            cpu_seconds=wall,
        )
        if plan is not None:
            for kind, count in plan.stats.injected.items():
                delta = count - injected0.get(kind, 0)
                if delta:
                    report.injected[kind] = delta
        self.last_report = report
        return report


class ProcessExecutor(SweepExecutor):
    """Sharded sweep across forked workers, merged in shard order.

    The monitored list is cut into at most ``workers`` contiguous
    slices; each runs in a forked child against the copy-on-write world
    with shard-local client/store effects, and the parent replays every
    shard's results — store records, quarantines, counters, passive-DNS
    observations, new extraction-cache entries — in shard order.  With
    one worker (or where ``os.fork`` is unavailable) the same shard
    loop runs inline, fork-free, with identical results.

    ``use_fork=None`` (the default) auto-detects: forking pays only
    when more than one CPU is actually available — on a single-CPU box
    copy-on-write page faults on the big world heap cost more per sweep
    than sharding saves, so the shards run inline instead.  The merge
    path is identical either way, so the choice never affects results.

    The executor owns a persistent content-addressed
    :class:`ExtractionCache` that workers inherit through the fork and
    extend back through the merge, so week over week the (dominant)
    unchanged share of the web is never re-parsed.
    """

    def __init__(
        self,
        workers: int = 2,
        extraction_cache: Optional[ExtractionCache] = None,
        use_fork: Optional[bool] = None,
        supervisor: Optional[SupervisorConfig] = None,
        supervised: bool = True,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.extraction_cache = (
            extraction_cache if extraction_cache is not None else ExtractionCache()
        )
        self.use_fork = use_fork
        #: Failure-handling knobs; every sweep runs under the
        #: supervisor unless ``supervised=False`` opts into the bare
        #: fail-fast fork protocol (kept as a comparison baseline).
        self.supervisor = supervisor if supervisor is not None else SupervisorConfig()
        self.supervised = supervised
        #: "fork" or "inline" — how the most recent sweep actually ran.
        self.last_mode: Optional[str] = None

    def sweep(
        self, monitor: WeeklyMonitor, fqdns: Sequence[Name], at: datetime
    ) -> SweepReport:
        shards = partition(fqdns, self.workers)
        want_fork = (
            self.use_fork if self.use_fork is not None else effective_cpus() > 1
        )
        forked = len(shards) > 1 and want_fork and fork_available()
        started = time.perf_counter()
        quarantined: List[DeadLetter] = []
        if self.supervised:
            outcome = run_shards_supervised(
                monitor, shards, at, self.extraction_cache,
                config=self.supervisor, forked=forked,
            )
            results = outcome.results
            quarantined = outcome.quarantined
        elif forked:
            results = run_shards_forked(monitor, shards, at, self.extraction_cache)
        else:
            results = [
                run_shard(monitor, index, shard, at, self.extraction_cache, forked=False)
                for index, shard in enumerate(shards)
            ]
        self.last_mode = "fork" if forked else "inline"
        report = self._apply(monitor, results, forked, at, quarantined)
        report.workers = self.workers
        report.mode = self.last_mode
        if self.supervised:
            report.worker_crashes = outcome.worker_crashes
            report.worker_hangs = outcome.worker_hangs
            report.shard_retries = outcome.shard_retries
        report.wall_seconds = time.perf_counter() - started
        self.last_report = report
        return report

    def _apply(
        self,
        monitor: WeeklyMonitor,
        results: List[ShardResult],
        forked: bool,
        at: datetime,
        quarantined: Optional[List[DeadLetter]] = None,
    ) -> SweepReport:
        """Replay shard results into the parent, in shard order."""
        client = monitor.client
        plan = client.fault_plan
        breaker = client.breaker
        resolver = client.resolver
        ledger = (
            monitor.touch_ledger
            if monitor.incremental and monitor.journal is not None
            else None
        )
        report = SweepReport()
        for result in results:
            if forked:
                # The child's mutations died with it: apply the deltas.
                monitor.samples_taken += result.samples_taken
                monitor.sitemap_fetches += result.sitemap_fetches
                client.retries_total += result.retries
                client.backoff_seconds_total += result.backoff_seconds
                if breaker is not None:
                    breaker.trips += result.breaker_trips
                if plan is not None:
                    for kind, count in result.injected.items():
                        plan.stats.injected[kind] = (
                            plan.stats.injected.get(kind, 0) + count
                        )
                if resolver.passive_dns is not None:
                    for record, when in result.observations:
                        resolver.passive_dns.observe(record, when)
                self.extraction_cache.html.update(result.new_html)
                self.extraction_cache.sitemap.update(result.new_sitemap)
                self.extraction_cache.hits += result.cache_hits
                self.extraction_cache.misses += result.cache_misses
                # Shard-local observability reduces like every other
                # delta: registries merge associatively, trace events
                # replay in shard order.
                if result.metrics is not None and OBS.enabled:
                    OBS.metrics.merge_from(result.metrics)
                if result.trace_events:
                    OBS.tracer.replay(result.trace_events)
            for entry in result.sampled:
                if isinstance(entry, SnapshotFeatures):
                    is_new, previous = monitor.store.record(entry)
                    if is_new:
                        report.changed.append((entry, previous))
                    if ledger is not None:
                        # A full sample supersedes any ledger proof: the
                        # name was dirty (or unproven), so the old entry
                        # must not survive into the next sweep.
                        ledger.invalidate(entry.fqdn)
                else:
                    # Touch marker: the shard proved the state unchanged.
                    monitor.store.touch(entry, at)
                    if ledger is not None:
                        fresh = result.ledger_entries.get(entry)
                        if fresh is not None:
                            ledger.put(entry, fresh)
            if ledger is not None:
                for fqdn, _status in result.failures:
                    ledger.invalidate(fqdn)
            report.failures.extend(result.failures)
            report.samples_taken += result.samples_taken
            report.sitemap_fetches += result.sitemap_fetches
            report.retries += result.retries
            report.backoff_seconds += result.backoff_seconds
            report.breaker_trips += result.breaker_trips
            for kind, count in result.injected.items():
                report.injected[kind] = report.injected.get(kind, 0) + count
            report.cache_hits += result.cache_hits
            report.cache_misses += result.cache_misses
            report.shard_sizes.append(result.size)
            report.shard_walls.append(result.wall_seconds)
            report.cpu_seconds += result.wall_seconds
            if OBS.enabled:
                OBS.series.record_shard(
                    result.index, result.size,
                    result.cpu_seconds or result.wall_seconds,
                    result.wall_seconds,
                    result.peak_rss_kb,
                )
        for letter in quarantined or ():
            report.quarantined.append((letter.fqdn, letter.reason))
            if ledger is not None:
                # A quarantined name produced no sample this sweep; any
                # stale cleanliness proof must not carry it past the
                # next one either.
                ledger.invalidate(letter.fqdn)
        if ledger is not None:
            # The world is quiescent during a sweep, so the journal's
            # position now equals its position when the shards computed
            # their dirty sets: every surviving entry's dependencies are
            # unchanged as of this cursor.
            ledger.cursor = monitor.journal.cursor()
        return report
