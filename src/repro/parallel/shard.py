"""Shard-local sweep execution.

One *shard* is a contiguous slice of the monitored-FQDN list, sampled
start to finish by one worker.  :func:`run_shard` is pure with respect
to the snapshot store: samples come back as data in input order and the
executor records them into the parent store in shard order, which is
what makes a sharded sweep byte-identical to a serial one — the store,
the changed-pairs list and the quarantine list all see the exact same
sequence either way.

Workers are plain ``os.fork`` children (copy-on-write world, no spawn
re-import cost) that ship their :class:`ShardResult` back over a pipe
as one length-prefixed pickle.  Anything a worker *would* have mutated
in the parent — passive-DNS observations, monitor/client counters,
fault statistics, new extraction-cache entries — is captured as a delta
in the result and replayed by the parent, again in shard order.

When the world is healthy (no fault plan drawing, no breaker, no retry
budget, plain HTTP) a shard takes the *fused* sampling path: one
resolution per FQDN, the index served directly off the routed host, and
the sitemap fetched by reusing the index resolution instead of
re-resolving.  The fused path replicates ``WeeklyMonitor.sample``
semantics exactly — including recording non-5xx sitemap responses of
any status — so its features are byte-identical to the generic path's.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import time
import traceback
from dataclasses import dataclass, field, replace
from datetime import datetime
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.monitoring import (
    ExtractionCache,
    SnapshotFeatures,
    TouchEntry,
    TouchLedger,
    TRANSIENT_SAMPLE_STATUSES,
    WeeklyMonitor,
)
from repro.dns.names import Name
from repro.dns.records import RRType
from repro.dns.resolver import ResolutionStatus, Resolver
from repro.dns.zone import ZONE_SET_KEY
from repro.obs import OBS, MetricsRegistry, cpu_seconds_now, peak_rss_kb
from repro.web.client import FetchStatus
from repro.web.http import HttpRequest


#: Enum ``.value`` reads hoisted out of the fused loop — each is a
#: descriptor call per access, and the loop needs several per sample.
_OK_VALUE = FetchStatus.OK.value
_NXDOMAIN_VALUE = FetchStatus.DNS_NXDOMAIN.value
_TIMEOUT_VALUE = FetchStatus.TIMEOUT.value
_DNS_ERROR_VALUE = FetchStatus.DNS_ERROR.value
_CONNECTION_FAILED_VALUE = FetchStatus.CONNECTION_FAILED.value
_HTTP_ERROR_VALUE = FetchStatus.HTTP_ERROR.value

#: Body → truncated sha256 memo.  Sites store page bodies as strings
#: and hand back the *same* object until the content changes, so the
#: steady-state lookup is an identity hit; a changed body is a new
#: string and misses.  sha256 is a pure function of the text, so even
#: an equal-but-distinct string mapping to the cached digest is
#: correct.  Bounded: cleared wholesale when it outgrows the cap.
_HASH_MEMO: Dict[str, str] = {}
_HASH_MEMO_MAX = 4096


def _body_hash(body: str) -> str:
    cached = _HASH_MEMO.get(body)
    if cached is None:
        if len(_HASH_MEMO) >= _HASH_MEMO_MAX:
            _HASH_MEMO.clear()
        cached = hashlib.sha256(body.encode("utf-8")).hexdigest()[:16]
        _HASH_MEMO[body] = cached
    return cached


def _ledger_entry(
    resolver: Resolver, fqdn: Name, ip: str, host, previous: SnapshotFeatures
) -> Optional[TouchEntry]:
    """Build the :class:`TouchEntry` proving this touch outcome.

    Captures every revision-journal subject the sample's outcome
    depends on: the DNS names the resolution walked (exact and wildcard
    keys) plus the zone-set key, the edge route and network binding the
    response came through, and the journal-adopted site whose content
    was hashed.  While none of those subjects move, the observable
    state provably equals ``previous.state_key()``.  Entries are plain
    data — they survive pickling across worker pipes, unlike the old
    identity memo whose child-created entries died with the fork.
    """
    site_for = getattr(host, "site_for", None)
    if site_for is None:
        return None
    site = site_for(fqdn)
    site_key = getattr(site, "journal_key", None)
    if site_key is None:
        # Unadopted content (no provider bound it to the journal) has
        # no change signal; it must keep taking the full sample.
        return None
    res_entry = resolver.memo_entry(fqdn, RRType.A)
    if res_entry is None:
        return None
    deps = [("dns", ZONE_SET_KEY)]
    for _zone, name, _ver, wkey, _wver in Resolver.memo_touched(res_entry):
        deps.append(("dns", name))
        if wkey is not None:
            deps.append(("dns", wkey))
    deps.append(("web", fqdn.lower()))
    deps.append(("net", ip))
    deps.append(("site", site_key))
    observed = tuple(
        record
        for group in Resolver.memo_observed(res_entry)
        for record in group
    )
    return TouchEntry(
        fqdn=fqdn,
        deps=tuple(deps),
        state_key=previous.state_key(),
        observed=observed,
    )


def _touch_clean(
    monitor, resolver, ledger: TouchLedger, changed, fqdn: Name, at: datetime
) -> bool:
    """Extend a clean name's window from its ledger proof.

    True means the name is provably unchanged: it holds a ledger entry,
    none of the entry's journal dependencies moved since the ledger's
    cursor, and the stored state the entry extends is still current.
    The only side effects are the passive-DNS observations the skipped
    resolution would have produced — replayed by value, which works
    identically against the parent feed (inline) and the forked-mode
    recorder — plus the sample counter.
    """
    entry = ledger.get(fqdn)
    if entry is None:
        return False
    if changed and not changed.isdisjoint(entry.deps):
        if OBS.enabled:
            OBS.metrics.inc("journal.dirty")
        return False
    latest = monitor.store.latest(fqdn)
    if latest is None or latest.state_key() != entry.state_key:
        if OBS.enabled:
            OBS.metrics.inc("journal.dirty")
        return False
    feed = resolver.passive_dns
    if feed is not None:
        for record in entry.observed:
            feed.observe(record, at)
    monitor.samples_taken += 1
    return True


@dataclass
class ShardResult:
    """Everything one shard's sweep produced, as replayable data.

    Counter fields are *deltas* against the worker's pre-sweep state,
    so the parent can apply them whether the shard ran forked (parent
    state untouched) or inline (parent state already mutated — deltas
    then only feed the report, never re-applied).
    """

    index: int
    size: int
    #: Store-eligible samples in input order (transient finals
    #: excluded).  An entry is either a full :class:`SnapshotFeatures`
    #: or a bare FQDN — a *touch marker* meaning the observed state
    #: provably equals the latest stored one, so the parent just bumps
    #: that state's observation window (``SnapshotStore.touch``) the
    #: way ``record`` would have deduplicated the full sample.
    sampled: List[Union[SnapshotFeatures, Name]] = field(default_factory=list)
    #: Retry-exhausted (fqdn, fetch_status) pairs, in input order.
    failures: List[Tuple[Name, str]] = field(default_factory=list)
    samples_taken: int = 0
    sitemap_fetches: int = 0
    retries: int = 0
    backoff_seconds: float = 0.0
    breaker_trips: int = 0
    injected: Dict[str, int] = field(default_factory=dict)
    #: Passive-DNS (record, at) replay log — populated in forked mode
    #: only; inline shards observe the parent feed directly.
    observations: List[Tuple[object, datetime]] = field(default_factory=list)
    #: Extraction-cache entries this shard added (forked mode only).
    new_html: Dict[str, Dict[str, object]] = field(default_factory=dict)
    new_sitemap: Dict[str, Tuple[int, int, Tuple[str, ...]]] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    #: Fresh :class:`TouchEntry` proofs minted by this shard's touch
    #: markers (incremental mode only).  Plain data, so they survive
    #: the pickle pipe; the parent installs them into the monitor's
    #: ledger in shard order — the old identity memo lost every entry
    #: a forked child created.
    ledger_entries: Dict[Name, TouchEntry] = field(default_factory=dict)
    wall_seconds: float = 0.0
    #: CPU seconds burned sampling this shard (wall-class: feeds the
    #: resource accounting, excluded from determinism diffs).
    cpu_seconds: float = 0.0
    #: Peak RSS of the worker process in KiB (forked mode: the child's
    #: own peak; inline: the parent's, so only max-merged, never summed).
    peak_rss_kb: int = 0
    fused: bool = False
    #: Shard-local observability, shipped home in forked mode only:
    #: the child's :class:`MetricsRegistry` (merged associatively by
    #: the parent) and its buffered trace events (replayed in shard
    #: order).  ``None``/empty while observability is off or inline.
    metrics: Optional[MetricsRegistry] = None
    trace_events: List[dict] = field(default_factory=list)


class _RecordingPassiveDNS:
    """Proxy feed that logs every observation while forwarding it."""

    def __init__(self, inner):
        self._inner = inner
        self.log: List[Tuple[object, datetime]] = []

    def observe(self, record, at):
        self.log.append((record, at))
        return self._inner.observe(record, at)

    def __getattr__(self, name):
        return getattr(self._inner, name)


def partition(items: Sequence, shards: int) -> List[List]:
    """Split ``items`` into at most ``shards`` contiguous, balanced slices.

    Earlier slices take the remainder, sizes differ by at most one, and
    concatenating the slices reproduces the input order — the property
    the deterministic shard-order merge relies on.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    items = list(items)
    count = min(shards, len(items))
    if count == 0:
        return []
    base, extra = divmod(len(items), count)
    slices: List[List] = []
    start = 0
    for i in range(count):
        size = base + (1 if i < extra else 0)
        slices.append(items[start:start + size])
        start += size
    return slices


def fast_path_eligible(monitor: WeeklyMonitor) -> bool:
    """Whether the fused sampling loop is behaviour-equivalent here.

    The fused loop skips the client's fault/breaker/retry/TLS machinery,
    so it is only taken when none of that machinery can fire: no active
    fault classes, no breaker, single-attempt retry policy, plain HTTP.
    """
    client = monitor.client
    plan = client.fault_plan
    return (
        not monitor.config.prefer_https
        and client.breaker is None
        and monitor.config.retry.max_attempts == 1
        and (plan is None or not plan.config.any_active)
    )


def run_shard(
    monitor: WeeklyMonitor,
    index: int,
    fqdns: Sequence[Name],
    at: datetime,
    cache: Optional[ExtractionCache],
    forked: bool,
) -> ShardResult:
    """Sample one shard and return its results as data.

    Never records into the snapshot store.  In ``forked`` mode the
    passive-DNS feed is interposed so observations can be replayed by
    the parent, and new extraction-cache entries are collected for
    shipping; inline mode mutates the parent's feed/cache directly.
    """
    client = monitor.client
    resolver = client.resolver
    plan = client.fault_plan
    started = time.perf_counter()
    cpu0 = cpu_seconds_now()
    samples0 = monitor.samples_taken
    sitemap0 = monitor.sitemap_fetches
    retries0 = client.retries_total
    backoff0 = client.backoff_seconds_total
    trips0 = client.breaker.trips if client.breaker is not None else 0
    injected0 = dict(plan.stats.injected) if plan is not None else {}
    previous_cache = monitor.extraction_cache
    monitor.extraction_cache = cache
    hits0 = cache.hits if cache is not None else 0
    misses0 = cache.misses if cache is not None else 0
    html_keys0 = set(cache.html) if (forked and cache is not None) else set()
    sitemap_keys0 = set(cache.sitemap) if (forked and cache is not None) else set()
    recorder = None
    if forked and resolver.passive_dns is not None:
        recorder = _RecordingPassiveDNS(resolver.passive_dns)
        resolver.passive_dns = recorder
    obs_parent = None
    if forked and OBS.enabled:
        # The child's counters and spans die with it, like every other
        # mutation: swap in a fresh registry and a buffer tracer for
        # the shard's duration and ship both home in the result.
        obs_parent = (OBS.metrics, OBS.tracer)
        OBS.metrics = MetricsRegistry()
        OBS.tracer = OBS.tracer.fork_buffer()

    result = ShardResult(index=index, size=len(fqdns))
    try:
        fused = fast_path_eligible(monitor)
        result.fused = fused
        obs_on = OBS.enabled
        if obs_on:
            OBS.metrics.inc(
                "sweep.shards.fused" if fused else "sweep.shards.generic"
            )
        ledger: Optional[TouchLedger] = None
        changed = None
        ledger_out: Optional[Dict[Name, TouchEntry]] = None
        if fused:
            # Part of the fast path: version-validated resolution
            # memoization.  Forked workers enable it on their own copy;
            # inline mode enables it process-wide, which is safe —
            # every hit is revalidated against the zone versions and
            # replays identical passive-DNS observations.
            resolver.enable_memo()
            if monitor.incremental and monitor.journal is not None:
                # The sweep's dirty set: every journal subject that
                # moved since the ledger's cursor.  The world is
                # quiescent during a sweep, so the set is identical in
                # every shard — and empty in the steady state, making
                # the per-name check one dict get plus a guard.
                ledger = monitor.touch_ledger
                changed = monitor.journal.changed_since(ledger.cursor)
                ledger_out = result.ledger_entries
        headers = {"User-Agent": monitor.config.user_agent}
        # ``seq=index`` pins the span's path id to the shard index, so
        # the id is identical whether the shard ran forked, inline or
        # serially re-dispatched — worker topology never shows in ids.
        with OBS.tracer.span(
            "sweep.shard", sim=at, seq=index, shard=index, size=len(fqdns),
            mode="fused" if fused else "generic",
        ):
            for fqdn in fqdns:
                if fused:
                    if ledger is not None and _touch_clean(
                        monitor, resolver, ledger, changed, fqdn, at
                    ):
                        if obs_on:
                            OBS.metrics.inc("monitor.samples")
                            OBS.metrics.inc("journal.clean_skips")
                        result.sampled.append(fqdn)
                        continue
                    features = _sample_fused(monitor, fqdn, at, headers, ledger_out)
                    if not isinstance(features, SnapshotFeatures):
                        # Touch marker: the state is unchanged, ship the
                        # name alone and let the parent bump the window.
                        if obs_on:
                            OBS.metrics.inc("sweep.sample.touch")
                        result.sampled.append(features)
                        continue
                    if obs_on:
                        OBS.metrics.inc("sweep.sample.full")
                else:
                    features = monitor.sample(fqdn, at)
                    if obs_on:
                        OBS.metrics.inc("sweep.sample.generic")
                if features.fetch_status in TRANSIENT_SAMPLE_STATUSES:
                    result.failures.append((fqdn, features.fetch_status))
                else:
                    result.sampled.append(features)
    finally:
        monitor.extraction_cache = previous_cache
        if recorder is not None:
            resolver.passive_dns = recorder._inner
        if obs_parent is not None:
            result.metrics = OBS.metrics
            result.trace_events = getattr(OBS.tracer, "events", [])
            OBS.metrics, OBS.tracer = obs_parent

    result.samples_taken = monitor.samples_taken - samples0
    result.sitemap_fetches = monitor.sitemap_fetches - sitemap0
    result.retries = client.retries_total - retries0
    result.backoff_seconds = client.backoff_seconds_total - backoff0
    if client.breaker is not None:
        result.breaker_trips = client.breaker.trips - trips0
    if plan is not None:
        for kind, count in plan.stats.injected.items():
            delta = count - injected0.get(kind, 0)
            if delta:
                result.injected[kind] = delta
    if recorder is not None:
        result.observations = recorder.log
    if cache is not None:
        result.cache_hits = cache.hits - hits0
        result.cache_misses = cache.misses - misses0
        if forked:
            result.new_html = {
                key: cache.html[key] for key in cache.html.keys() - html_keys0
            }
            result.new_sitemap = {
                key: cache.sitemap[key] for key in cache.sitemap.keys() - sitemap_keys0
            }
    result.wall_seconds = time.perf_counter() - started
    result.cpu_seconds = cpu_seconds_now() - cpu0
    result.peak_rss_kb = peak_rss_kb()
    return result


def _sample_fused(
    monitor: WeeklyMonitor,
    fqdn: Name,
    at: datetime,
    headers: Dict[str, str],
    ledger_out: Optional[Dict[Name, TouchEntry]] = None,
) -> Union[SnapshotFeatures, Name]:
    """One weekly sample on the fused healthy-world path.

    Semantics-for-semantics replica of ``WeeklyMonitor.sample`` with
    the fault/breaker/retry/TLS seams (guaranteed quiescent by
    :func:`fast_path_eligible`) elided: one resolution serves both the
    index and the sitemap fetch, the routed host is called directly,
    the body is encoded and hashed once, and features are built in a
    single construction instead of a ``replace`` chain.

    Returns the bare ``fqdn`` (a *touch marker*) instead of features
    when the observed state provably equals the latest stored state:
    same resolution triple, an OK fetch with the same HTTP status and
    body hash, and carried (already-fetched) sitemap fields — exactly
    the fields of ``SnapshotFeatures.state_key``, so ``record`` would
    have deduplicated the sample anyway.  The marker skips the features
    construction entirely; the store just extends the current state's
    observation window.

    In incremental mode (``ledger_out`` given) every touch marker also
    mints a :class:`TouchEntry` proof into ``ledger_out`` so future
    sweeps can skip the name outright while its journal dependencies
    stay put.
    """
    monitor.samples_taken += 1
    if OBS.enabled:
        OBS.metrics.inc("monitor.samples")
    client = monitor.client
    resolution = client.resolver.resolve(fqdn, at=at)
    status = resolution.status
    dns_status = status.value
    cname_chain = tuple(resolution.cname_chain)
    addresses = tuple(resolution.addresses)
    if status is not ResolutionStatus.NOERROR or not resolution.records:
        base = dict(
            fqdn=fqdn,
            at=at,
            dns_status=dns_status,
            cname_chain=cname_chain,
            addresses=addresses,
        )
        if status is ResolutionStatus.NXDOMAIN:
            return SnapshotFeatures(fetch_status=_NXDOMAIN_VALUE, **base)
        if status is ResolutionStatus.TIMEOUT:
            return SnapshotFeatures(fetch_status=_TIMEOUT_VALUE, **base)
        return SnapshotFeatures(fetch_status=_DNS_ERROR_VALUE, **base)
    host = client.network.host_at(addresses[0])
    if host is None or not hasattr(host, "serve"):
        return SnapshotFeatures(
            fetch_status=_CONNECTION_FAILED_VALUE,
            fqdn=fqdn,
            at=at,
            dns_status=dns_status,
            cname_chain=cname_chain,
            addresses=addresses,
        )
    # ``headers`` is shared, not copied: every in-tree handler treats
    # the request as read-only, and the request object never outlives
    # this call.
    response = host.serve(
        HttpRequest(host=fqdn, path="/", scheme="http", headers=headers)
    )
    http_status = response.status
    if http_status >= 500 or http_status == 429:
        return SnapshotFeatures(
            fetch_status=_HTTP_ERROR_VALUE,
            http_status=http_status,
            fqdn=fqdn,
            at=at,
            dns_status=dns_status,
            cname_chain=cname_chain,
            addresses=addresses,
        )
    body = response.body
    body_hash = _body_hash(body)
    previous = monitor.store.latest(fqdn)
    if (
        previous is not None
        and previous.html_hash == body_hash
        and previous.fetch_status == _OK_VALUE
        and previous.http_status == http_status
        and previous.dns_status == dns_status
        and previous.cname_chain == cname_chain
        and previous.addresses == addresses
        and previous.sitemap_count >= 0
    ):
        if ledger_out is not None:
            entry = _ledger_entry(client.resolver, fqdn, addresses[0], host, previous)
            if entry is not None:
                ledger_out[fqdn] = entry
        return fqdn
    if previous is not None and previous.html_hash == body_hash:
        features = replace(
            previous,
            at=at,
            dns_status=dns_status,
            cname_chain=cname_chain,
            addresses=addresses,
            fetch_status=_OK_VALUE,
            attempts=1,
            scheme="http",
        )
    else:
        cache = monitor.extraction_cache
        fields = cache.html.get(body_hash) if cache is not None else None
        if fields is not None:
            cache.hits += 1
            if OBS.enabled:
                OBS.metrics.inc("extraction.html.hits")
        else:
            fields = monitor._extract_html_fields(body)
            if cache is not None:
                cache.misses += 1
                cache.html[body_hash] = fields
                if OBS.enabled:
                    OBS.metrics.inc("extraction.html.misses")
        features = SnapshotFeatures(
            fetch_status=_OK_VALUE,
            http_status=http_status,
            html_hash=body_hash,
            fqdn=fqdn,
            at=at,
            dns_status=dns_status,
            cname_chain=cname_chain,
            addresses=addresses,
            **fields,
        )
    if previous is None or previous.html_hash != features.html_hash or previous.sitemap_count < 0:
        # The sitemap rides the index resolution: nothing mutates the
        # world mid-sweep, so re-resolving would return the same route.
        # Like the generic path, any non-5xx/429 response body — a 404
        # page included — is recorded as the sitemap observation.
        monitor.sitemap_fetches += 1
        sitemap_response = host.serve(
            HttpRequest(
                host=fqdn, path="/sitemap.xml", scheme="http", headers=headers
            )
        )
        if not (sitemap_response.status >= 500 or sitemap_response.status == 429):
            size, count, sample = monitor.extract_sitemap_fields(sitemap_response.body)
            features = replace(
                features, sitemap_size=size, sitemap_count=count, sitemap_sample=sample
            )
    return features


# -- fork plumbing ---------------------------------------------------------


def fork_available() -> bool:
    return hasattr(os, "fork")


def _write_all(fd: int, data: bytes) -> None:
    view = memoryview(data)
    while view:
        written = os.write(fd, view)
        view = view[written:]


def _read_exact(fd: int, length: int) -> bytes:
    chunks: List[bytes] = []
    remaining = length
    while remaining:
        chunk = os.read(fd, min(remaining, 1 << 20))
        if not chunk:
            raise RuntimeError("shard worker closed its pipe before reporting")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def shard_bounds(shards: Sequence[Sequence[Name]]) -> List[Tuple[int, int]]:
    """Each shard's ``[start, end)`` slice of the full monitored list.

    Shards are contiguous (:func:`partition`), so the bounds are just
    running offsets — the identity operators need to act on a worker
    error ("which FQDN range died?") without replaying the partition.
    """
    bounds: List[Tuple[int, int]] = []
    offset = 0
    for shard in shards:
        bounds.append((offset, offset + len(shard)))
        offset += len(shard)
    return bounds


def shard_ident(index: int, bounds: Tuple[int, int]) -> str:
    """Human-actionable shard identity for worker error messages."""
    start, end = bounds
    return f"shard {index} (names[{start}:{end}], {end - start} FQDNs)"


def fork_with_pipe() -> Tuple[int, int, int]:
    """Fork with a result pipe, leaking nothing on failure.

    Returns ``(pid, read_fd, write_fd)``.  If ``os.fork`` raises —
    EAGAIN under pid pressure, ENOMEM — both pipe ends are closed
    before the exception propagates, so a failed spawn can't bleed
    file descriptors across a long campaign.
    """
    read_fd, write_fd = os.pipe()
    try:
        pid = os.fork()
    except BaseException:
        os.close(read_fd)
        os.close(write_fd)
        raise
    return pid, read_fd, write_fd


def run_shards_forked(
    monitor: WeeklyMonitor,
    shards: List[List[Name]],
    at: datetime,
    cache: Optional[ExtractionCache],
) -> List[ShardResult]:
    """Run every shard in its own forked worker; results in shard order.

    Each child samples its slice against the copy-on-write world and
    ships one length-prefixed pickle back over a pipe, then exits with
    ``os._exit`` so no parent state (buffers, atexit hooks) replays.
    The parent drains pipes in shard order and reaps every child before
    surfacing any worker error.

    This is the *unsupervised* protocol: any worker failure aborts the
    sweep.  :func:`repro.parallel.supervisor.run_shards_supervised`
    wraps the same child protocol with deadlines, re-dispatch and
    poison bisection.
    """
    bounds = shard_bounds(shards)
    children: List[Tuple[int, int]] = []
    for index, shard in enumerate(shards):
        pid, read_fd, write_fd = fork_with_pipe()
        if pid == 0:
            os.close(read_fd)
            exit_code = 0
            try:
                try:
                    result = run_shard(monitor, index, shard, at, cache, forked=True)
                    payload = pickle.dumps(
                        ("ok", result), protocol=pickle.HIGHEST_PROTOCOL
                    )
                except BaseException:
                    payload = pickle.dumps(
                        (
                            "err",
                            f"{shard_ident(index, bounds[index])}:\n"
                            f"{traceback.format_exc()}",
                        ),
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                _write_all(write_fd, struct.pack("<Q", len(payload)) + payload)
                os.close(write_fd)
            except BaseException:
                exit_code = 1
            os._exit(exit_code)
        os.close(write_fd)
        children.append((pid, read_fd))

    results: List[ShardResult] = []
    errors: List[str] = []
    for index, (pid, read_fd) in enumerate(children):
        payload = None
        try:
            header = _read_exact(read_fd, 8)
            (length,) = struct.unpack("<Q", header)
            payload = _read_exact(read_fd, length)
        except Exception as error:
            errors.append(
                f"{shard_ident(index, bounds[index])} worker pid {pid}: {error}"
            )
        finally:
            os.close(read_fd)
            os.waitpid(pid, 0)
        if payload is None:
            continue
        kind, value = pickle.loads(payload)
        if kind == "err":
            errors.append(value)
        else:
            results.append(value)
    if errors:
        raise RuntimeError("sweep shard worker(s) failed:\n" + "\n".join(errors))
    return results
