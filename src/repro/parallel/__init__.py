"""Sharded parallel execution of the weekly monitor sweep.

The monitored-FQDN list is the pipeline's unit of horizontal scale
(Section 3.2 monitors millions of names weekly).  This package shards
that list into contiguous slices, fans the slices out to workers, and
merges the results deterministically in shard order, so a parallel
sweep of a fault-free world is byte-identical to a serial one.
"""

from repro.parallel.executor import (
    ProcessExecutor,
    SerialExecutor,
    SweepExecutor,
    SweepReport,
)
from repro.parallel.shard import ShardResult, fast_path_eligible, partition
from repro.parallel.supervisor import (
    DeadLetter,
    SupervisedSweep,
    SupervisorConfig,
    WorkerFailure,
    run_shards_supervised,
)

__all__ = [
    "DeadLetter",
    "ProcessExecutor",
    "SerialExecutor",
    "SupervisedSweep",
    "SupervisorConfig",
    "SweepExecutor",
    "SweepReport",
    "ShardResult",
    "WorkerFailure",
    "fast_path_eligible",
    "partition",
    "run_shards_supervised",
]
