"""Inverted index and host link graph."""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from repro.search.crawler import CrawledPage


@dataclass(frozen=True)
class PageRef:
    """Identity of one indexed page."""

    fqdn: str
    path: str

    @property
    def url(self) -> str:
        return f"http://{self.fqdn}{self.path}"


class SearchIndex:
    """Token postings plus a host-level backlink graph."""

    def __init__(self) -> None:
        self._postings: Dict[str, Set[PageRef]] = defaultdict(set)
        self._pages: Dict[PageRef, CrawledPage] = {}
        self._backlinks: Dict[str, Set[str]] = defaultdict(set)  # host -> linking hosts

    def add_page(self, page: CrawledPage) -> PageRef:
        """Index one crawled page and its outgoing host links."""
        ref = PageRef(fqdn=page.fqdn.lower(), path=page.path)
        self._pages[ref] = page
        for keyword in page.keywords:
            for token in keyword.split(" "):
                self._postings[token].add(ref)
        for url in page.outlinks:
            host = url.split("//", 1)[-1].split("/", 1)[0].lower()
            if host and host != ref.fqdn:
                self._backlinks[host].add(ref.fqdn)
        return ref

    def add_pages(self, pages: Iterable[CrawledPage]) -> int:
        count = 0
        for page in pages:
            self.add_page(page)
            count += 1
        return count

    # -- queries -----------------------------------------------------------------

    @property
    def page_count(self) -> int:
        return len(self._pages)

    @property
    def host_count(self) -> int:
        return len({ref.fqdn for ref in self._pages})

    def pages_for_token(self, token: str) -> Set[PageRef]:
        return set(self._postings.get(token.lower(), set()))

    def candidates(self, query_tokens: List[str]) -> Set[PageRef]:
        """Pages matching at least one query token."""
        out: Set[PageRef] = set()
        for token in query_tokens:
            out |= self.pages_for_token(token)
        return out

    def page(self, ref: PageRef) -> CrawledPage:
        return self._pages[ref]

    def match_score(self, ref: PageRef, query_tokens: List[str]) -> float:
        """Keyword-relevance component: how many query tokens the page
        carries, with a title bonus."""
        page = self._pages[ref]
        page_tokens: Set[str] = set()
        for keyword in page.keywords:
            page_tokens.update(keyword.split(" "))
        hits = sum(1 for token in query_tokens if token in page_tokens)
        if hits == 0:
            return 0.0
        title_tokens = set(page.title.lower().split())
        title_hits = sum(1 for token in query_tokens if token in title_tokens)
        return hits + 0.5 * title_hits

    def backlink_count(self, host: str) -> int:
        """Distinct hosts linking to ``host``."""
        return len(self._backlinks.get(host.lower(), set()))

    def backlink_authority(self, host: str) -> float:
        """Log-scaled backlink signal."""
        return math.log1p(self.backlink_count(host))
