"""Ranking and query serving.

Ranking combines the Section 5.2.3 signals: keyword relevance (what
stuffing manipulates), domain age via WHOIS (what victim selection
exploits — subdomains inherit the parent's reputation), HTTPS (why
hijackers bother with certificates), and backlinks (what private link
networks inflate).  The weights are not Google's — nobody knows
Google's — but the *signals* are the ones the paper names, which is
what makes the attacks in the simulation profitable for the same
reasons they are in reality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from datetime import datetime
from typing import List, Optional, Sequence

from repro.core.keywords import tokenize
from repro.dns.names import registered_domain
from repro.pki.ct_log import CTLog
from repro.search.crawler import Crawler
from repro.search.index import PageRef, SearchIndex
from repro.whois.registry import DomainRegistry


@dataclass(frozen=True)
class RankedResult:
    """One search result."""

    url: str
    fqdn: str
    title: str
    score: float


@dataclass
class RankingWeights:
    """Relative weight of each ranking signal."""

    relevance: float = 1.0
    domain_age: float = 0.35
    https: float = 0.5
    backlinks: float = 0.6


class SearchEngine:
    """Crawl + index + rank."""

    def __init__(
        self,
        crawler: Crawler,
        whois: DomainRegistry,
        ct_log: CTLog,
        weights: Optional[RankingWeights] = None,
    ):
        self._crawler = crawler
        self._whois = whois
        self._ct_log = ct_log
        self.weights = weights or RankingWeights()
        self.index = SearchIndex()
        self._last_crawl: Optional[datetime] = None

    def crawl(self, hosts: Sequence[str], at: datetime) -> int:
        """(Re)crawl hosts into the index; returns pages indexed."""
        pages = self._crawler.crawl(hosts, at)
        self._last_crawl = at
        return self.index.add_pages(pages)

    def authority(self, fqdn: str, at: datetime) -> float:
        """The host's query-independent score."""
        weights = self.weights
        score = 0.0
        record = self._whois.lookup(fqdn)
        if record is not None:
            score += weights.domain_age * math.log1p(record.age_years(at))
        if self._ct_log.first_issuance_for(fqdn) is not None:
            score += weights.https
        score += weights.backlinks * self.index.backlink_authority(fqdn)
        return score

    def search(self, query: str, at: datetime, limit: int = 10) -> List[RankedResult]:
        """Rank indexed pages for ``query``."""
        query_tokens = tokenize(query)
        results: List[RankedResult] = []
        for ref in self.index.candidates(query_tokens):
            relevance = self.index.match_score(ref, query_tokens)
            if relevance <= 0:
                continue
            score = self.weights.relevance * relevance + self.authority(ref.fqdn, at)
            page = self.index.page(ref)
            results.append(
                RankedResult(url=ref.url, fqdn=ref.fqdn, title=page.title, score=score)
            )
        results.sort(key=lambda r: (-r.score, r.url))
        return results[:limit]

    def top_hosts(self, query: str, at: datetime, limit: int = 10) -> List[str]:
        """Distinct hosts of the top results (one slot per host)."""
        hosts: List[str] = []
        for result in self.search(query, at, limit=limit * 5):
            if result.fqdn not in hosts:
                hosts.append(result.fqdn)
            if len(hosts) >= limit:
                break
        return hosts
