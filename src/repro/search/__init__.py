"""Search-engine substrate.

Blackhat SEO only makes sense against a search engine: doorway pages,
keyword stuffing, link networks and the Japanese Keyword Hack all
manipulate *ranking signals*.  This package implements the target of
those manipulations — a crawler (which, being a bot, receives the
cloaked content), an inverted index with a backlink graph, and a
ranking function built on the signals Section 5.2.3 names: domain age,
HTTPS, backlinks and keyword relevance.  The search-poisoning analysis
in :mod:`repro.core.search_poisoning` then measures how far hijacked
domains climb for gambling queries.
"""

from repro.search.crawler import CrawledPage, Crawler, CrawlStats
from repro.search.index import SearchIndex
from repro.search.engine import RankedResult, SearchEngine

__all__ = [
    "Crawler",
    "CrawledPage",
    "CrawlStats",
    "SearchIndex",
    "SearchEngine",
    "RankedResult",
]
