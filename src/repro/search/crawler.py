"""A polite web crawler.

Crawls hosts the way a search spider does: fetch the index with a bot
user agent (so cloaked content is served — the JKH's whole point),
discover further pages from sitemaps and same-host links, and follow a
bounded number of them.  Cross-host links are not followed but are
recorded as backlink edges for the ranking graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.keywords import extract_keywords
from repro.web.client import HttpClient
from repro.web.html import parse_html
from repro.web.sitemap import parse_sitemap

#: The spider identifies itself; cloaking sites key on this.
CRAWLER_USER_AGENT = "Mozilla/5.0 (compatible; SimBot/1.0; +http://sim.example/bot)"


@dataclass(frozen=True)
class CrawledPage:
    """One fetched page, reduced to indexable features."""

    fqdn: str
    path: str
    title: str
    lang: str
    keywords: frozenset
    outlinks: Tuple[str, ...]  # absolute URLs only
    internal_paths: Tuple[str, ...]  # same-host relative links
    fetched_at: datetime


@dataclass
class CrawlStats:
    """Aggregate crawl accounting."""

    hosts_attempted: int = 0
    hosts_reached: int = 0
    pages_fetched: int = 0
    fetch_failures: int = 0


class Crawler:
    """Breadth-limited per-host crawler."""

    def __init__(self, client: HttpClient, pages_per_host: int = 5):
        self._client = client
        self.pages_per_host = pages_per_host
        self.stats = CrawlStats()

    def crawl_host(self, fqdn: str, at: datetime) -> List[CrawledPage]:
        """Fetch the index plus a few discovered pages of one host."""
        self.stats.hosts_attempted += 1
        headers = {"User-Agent": CRAWLER_USER_AGENT}
        index = self._fetch_page(fqdn, "/", at, headers)
        if index is None:
            self.stats.fetch_failures += 1
            return []
        self.stats.hosts_reached += 1
        pages = [index]
        for path in self._discover_paths(fqdn, index, at, headers):
            if len(pages) >= self.pages_per_host:
                break
            page = self._fetch_page(fqdn, path, at, headers)
            if page is not None:
                pages.append(page)
        return pages

    def crawl(self, hosts: Sequence[str], at: datetime) -> List[CrawledPage]:
        """Crawl many hosts; failures are skipped silently (bots move on)."""
        pages: List[CrawledPage] = []
        for fqdn in hosts:
            pages.extend(self.crawl_host(fqdn, at))
        return pages

    # -- internals ------------------------------------------------------------

    def _fetch_page(
        self, fqdn: str, path: str, at: datetime, headers: Dict[str, str]
    ) -> Optional[CrawledPage]:
        outcome = self._client.fetch(fqdn, path=path, at=at, headers=headers)
        if not outcome.ok or not outcome.response.ok:
            return None
        if outcome.response.content_type != "text/html":
            return None
        self.stats.pages_fetched += 1
        document = parse_html(outcome.response.body)
        outlinks = tuple(
            url for url in document.all_urls() if url.startswith(("http://", "https://"))
        )
        internal = tuple(
            link.href for link in document.links
            if link.href.startswith("/") and not link.href.startswith("//")
        )
        return CrawledPage(
            fqdn=fqdn, path=path, title=document.title, lang=document.lang,
            keywords=extract_keywords(document), outlinks=outlinks,
            internal_paths=internal, fetched_at=at,
        )

    def _discover_paths(
        self, fqdn: str, index: CrawledPage, at: datetime, headers: Dict[str, str]
    ) -> List[str]:
        paths: List[str] = []
        seen: Set[str] = {"/"}
        # Sitemap first — that's where bulk uploads advertise themselves.
        outcome = self._client.fetch(fqdn, path="/sitemap.xml", at=at, headers=headers)
        if outcome.ok and outcome.response.ok:
            for url in parse_sitemap(outcome.response.body).urls():
                path = _same_host_path(url, fqdn)
                if path and path not in seen:
                    seen.add(path)
                    paths.append(path)
                if len(paths) >= self.pages_per_host * 2:
                    break
        for candidate in index.internal_paths:
            if candidate not in seen:
                seen.add(candidate)
                paths.append(candidate)
        for url in index.outlinks:
            path = _same_host_path(url, fqdn)
            if path and path not in seen:
                seen.add(path)
                paths.append(path)
        return paths


def _same_host_path(url: str, fqdn: str) -> Optional[str]:
    without_scheme = url.split("//", 1)[-1]
    host, _, rest = without_scheme.partition("/")
    if host.lower() != fqdn.lower():
        return None
    return "/" + rest if rest else "/"
