"""Figures 15/16: hijack duration distribution and time frames.

Paper: many hijacks are remediated within ~15 days, but more than a
third last beyond 65 days (some beyond a year); concurrent hijacks grow
through the window after a 2020 wave and an early-2021 lull.
"""

from datetime import timedelta

from repro.core.duration import analyze_durations, concurrent_hijacks, hijack_time_frames
from repro.core.reporting import percent, render_histogram, render_table


def test_duration_distribution(paper, benchmark, emit):
    report = benchmark(analyze_durations, paper.dataset, paper.end)
    frames = hijack_time_frames(paper.dataset, paper.end)
    instants = [paper.config.start + timedelta(weeks=w) for w in range(0, paper.config.weeks, 8)]
    concurrency = concurrent_hijacks(paper.dataset, instants)
    emit(
        "fig15_16_duration",
        render_histogram(report.histogram(), title="Figure 15 — hijack duration (days)")
        + "\n\n"
        + render_table(
            ["statistic", "value"],
            [
                ("episodes", report.total),
                ("<= 15 days", f"{report.short_lived} ({percent(report.short_lived_share)})"),
                ("> 65 days (paper > 1/3)", f"{report.long_lived} ({percent(report.long_lived_share)})"),
                ("> 1 year", report.beyond_year),
            ],
        )
        + "\n\n"
        + render_table(
            ["instant", "concurrent hijacks"],
            [(t.date().isoformat(), n) for t, n in concurrency],
            title="Figure 16 — concurrently hijacked domains over time",
        ),
    )
    # The paper's headline shares.
    assert report.long_lived_share > 1 / 4
    assert report.short_lived_share > 0.15
    assert report.beyond_year >= 1
    # Figure 16's ramp: later concurrency beats the early-2021 lull.
    lull = [n for t, n in concurrency if t.year == 2021 and t.month <= 6]
    late = [n for t, n in concurrency if t.year >= 2022]
    assert late and max(late) >= max(lull or [0])
    starts = [start for _, start, _ in frames]
    assert starts == sorted(starts)
