"""Figures 22/27/28: clustering attacker infrastructure.

Paper: hierarchical clustering of identifier co-occurrence (distance =
1 - Jaccard over shared domains, cutoff 0.95) yields 1,798 clusters —
mostly singletons/pairs — plus one giant coordinated component of
1,609 identifiers covering 743 domains; the top-50 cluster sizes are
long-tailed; identifiers cover about a third of hijacked domains.
"""

from repro.core.clustering import cluster_identifiers, cooccurrence_edges
from repro.core.identifiers import extract_identifiers
from repro.core.reporting import percent, render_table


def test_infrastructure_clustering(paper, benchmark, emit):
    identifier_map = extract_identifiers(paper.dataset, paper.monitor.store)
    report = benchmark(cluster_identifiers, identifier_map)
    edges = cooccurrence_edges(identifier_map)
    top = report.top_by_domains(50)
    covered = report.covered_domains()
    emit(
        "fig22_27_28_clusters",
        render_table(
            ["cluster", "identifiers", "hijacked domains"],
            [(c.cluster_id, c.identifier_count, c.domain_count) for c in top],
            title=(
                f"Figure 22 — top clusters by domains "
                f"({report.cluster_count} clusters; largest "
                f"{report.largest.identifier_count} identifiers / "
                f"{report.largest.domain_count} domains; "
                f"coverage {percent(len(covered) / len(paper.dataset))} of hijacks; "
                f"{len(edges)} co-occurrence edges; "
                f"{len(report.merges)} dendrogram merges at cutoff {report.cutoff})"
            ),
        ),
    )
    # Long tail + one giant component, as in the paper.
    assert report.cluster_count >= 5
    sizes = [c.domain_count for c in report.clusters]
    assert report.largest.domain_count >= 2 * sorted(sizes)[-2]
    # Identifiers tie together a meaningful share of the hijacks.
    assert 0.1 < len(covered) / len(paper.dataset) <= 1.0
    # The dendrogram merges are sorted by distance (agglomerative order).
    distances = [m.distance for m in report.merges]
    assert distances == sorted(distances)
    assert all(d <= report.cutoff for d in distances)
