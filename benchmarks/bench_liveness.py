"""Section 2: ICMP vs TCP vs HTTP liveness measurement comparison.

Paper: among cloud-hosted domains of the hijacked dataset, ICMP reaches
72%, TCP 80/443 reaches 93%, HTTP to the actual FQDN 89% — i.e. ICMP
overestimates vulnerability by ~20 points and TCP underestimates it
slightly, because transport probes hit the shared edge rather than the
virtually hosted resource.
"""

from repro.core.liveness import compare_liveness
from repro.core.reporting import percent, render_table


def test_liveness_comparison(paper, benchmark, emit):
    internet = paper.internet
    monitored = paper.collector.monitored_sorted
    report = benchmark(
        compare_liveness,
        monitored,
        internet.resolver,
        internet.network,
        internet.client,
        paper.end,
    )
    live = [r.fqdn for r in paper.dataset.records() if r.currently_abused]
    live_report = compare_liveness(
        live, internet.resolver, internet.network, internet.client, paper.end
    )
    emit(
        "section2_liveness",
        render_table(
            ["population", "n", "icmp", "tcp-80/443", "http-fqdn"],
            [
                ("all monitored", report.total, percent(report.icmp_rate),
                 percent(report.tcp_rate), percent(report.http_rate)),
                ("live hijacks", live_report.total, percent(live_report.icmp_rate),
                 percent(live_report.tcp_rate), percent(live_report.http_rate)),
            ],
            title="Liveness by probe method (paper: icmp 72% / tcp 93% / http 89%)",
        ),
    )
    # Shape: ICMP under-reports liveness; TCP can only over-report vs HTTP.
    assert report.icmp_rate < report.http_rate
    assert report.tcp_rate >= report.http_rate
    ratio = report.icmp_rate / report.tcp_rate
    assert 0.6 < ratio < 0.9  # paper: 72/93 ≈ 0.77
