"""Detector fast-path benchmark: indexed vs linear matching and rescans.

The paper's detection cost (Figure 25) is dominated by two O(world)
scans: every weekly changed state against the full signature store
(``_match_existing``) and every fresh signature against the entire
snapshot history (``_rescan_history``).  This benchmark builds a
synthetic paper-shaped workload — a validated signature store of
conjunctive signatures, a weekly stream of mostly benign changed
states, and a deep snapshot store — and times both scans with the
inverted indexes on and off.

The two paths must agree bit-for-bit: the bench asserts identical
match results, identical flagged sets and identical export digests, so
the throughput table doubles as a parity check.

Runs two ways:

* under pytest (``pytest benchmarks/bench_detector.py``): a reduced
  workload with a conservative ≥ 1.5× floor, emitting
  ``benchmarks/results/detector_index.txt``;
* standalone (``python benchmarks/bench_detector.py``): the
  paper-scale acceptance run — ≥ 5× combined match+rescan throughput —
  or ``--quick`` for the reduced workload.
"""

from __future__ import annotations

import argparse
import hashlib
import pathlib
import random
import sys
import time
from datetime import datetime, timedelta
from typing import Dict, List, Sequence

from repro.core.detection import AbuseDetector, DetectorConfig
from repro.core.export import dataset_to_json
from repro.core.monitoring import SnapshotFeatures, SnapshotStore
from repro.core.reporting import render_table
from repro.core.signatures import Signature

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

T0 = datetime(2020, 3, 2)
WEEK = timedelta(weeks=1)

#: Paper-scale workload (standalone acceptance): the signature store
#: and weekly change volume are in the ballpark the paper sustains
#: after three years of monitoring.
PAPER_SCALE = dict(n_signatures=1500, n_pages=3000, n_fqdns=2500,
                   states_per_fqdn=3)
#: Reduced workload for per-PR CI.
QUICK_SCALE = dict(n_signatures=300, n_pages=600, n_fqdns=500,
                   states_per_fqdn=3)

#: Combined speedup gates (linear wall / indexed wall).
PAPER_GATE = 5.0
QUICK_GATE = 1.5


def _token_pool(prefix: str, count: int) -> List[str]:
    return [f"{prefix}{i:05d}" for i in range(count)]


def build_signatures(rng: random.Random, count: int) -> List[Signature]:
    """A validated-store-shaped mix of conjunctive signatures."""
    abuse_pool = _token_pool("abuse", 20_000)
    host_pool = [f"cdn-{i:04d}.bad.example" for i in range(2_000)]
    signatures: List[Signature] = []
    for serial in range(count):
        roll = rng.random()
        keywords = frozenset(rng.sample(abuse_pool, 5))
        if roll < 0.70:
            sig = Signature(f"sig-{serial:05d}", created_at=T0, keywords=keywords)
        elif roll < 0.85:
            sig = Signature(f"sig-{serial:05d}", created_at=T0, keywords=keywords,
                            infrastructure=frozenset(rng.sample(host_pool, 2)))
        elif roll < 0.95:
            sig = Signature(f"sig-{serial:05d}", created_at=T0, keywords=keywords,
                            template_markers=frozenset({"comming soon"}))
        else:
            sig = Signature(f"sig-{serial:05d}", created_at=T0,
                            sitemap_min_count=300 + 10 * (serial % 50))
        signatures.append(sig)
    return signatures


def _page(fqdn: str, at: datetime, keywords, sitemap_count: int = -1,
          urls: Sequence[str] = (), title: str = "") -> SnapshotFeatures:
    return SnapshotFeatures(
        fqdn=fqdn, at=at, dns_status="NOERROR",
        cname_chain=("x.azurewebsites.net",), addresses=("40.0.0.1",),
        fetch_status="ok", http_status=200,
        html_hash=f"h-{fqdn}-{at:%Y%m%d}", html_size=2048,
        title=title, keywords=frozenset(keywords),
        external_urls=tuple(urls),
        sitemap_count=sitemap_count, sitemap_size=max(-1, sitemap_count * 80),
    )


def build_pages(rng: random.Random, signatures: Sequence[Signature],
                count: int) -> List[SnapshotFeatures]:
    """One week of changed states: mostly benign, a few true hits."""
    benign_pool = _token_pool("benign", 20_000)
    pages: List[SnapshotFeatures] = []
    for i in range(count):
        fqdn = f"page-{i:06d}.victim.example.com"
        if rng.random() < 0.03:
            sig = rng.choice(signatures)
            keywords = set(sig.keywords) or set(rng.sample(benign_pool, 6))
            pages.append(_page(
                fqdn, T0, keywords,
                sitemap_count=max(900, sig.sitemap_min_count),
                urls=tuple(f"https://{h}/p.js" for h in sig.infrastructure),
                title="Comming soon" if sig.template_markers else "",
            ))
        else:
            pages.append(_page(fqdn, T0, set(rng.sample(benign_pool, 6))))
    return pages


def build_store(rng: random.Random, n_fqdns: int, states_per_fqdn: int):
    """A snapshot history for the retrospective-rescan half.

    Returns the store plus the keyword sets of the abusive states it
    holds, so rescan signatures can be derived from real history (as
    extraction would) and genuinely back-date hijacks.
    """
    benign_pool = _token_pool("benign", 20_000)
    abuse_pool = _token_pool("abuse", 20_000)
    store = SnapshotStore()
    abusive_states: List[frozenset] = []
    for i in range(n_fqdns):
        fqdn = f"hist-{i:06d}.victim.example.com"
        for week in range(states_per_fqdn):
            if rng.random() < 0.02:
                keywords = frozenset(rng.sample(abuse_pool, 5))
                abusive_states.append(keywords)
            else:
                keywords = frozenset(rng.sample(benign_pool, 6))
            store.record(_page(fqdn, T0 + week * WEEK, keywords))
    return store, abusive_states


def run_variant(use_index: bool, signatures: Sequence[Signature],
                pages: Sequence[SnapshotFeatures], store: SnapshotStore,
                rescan_signatures: Sequence[Signature]) -> Dict:
    """Time the two hot scans through one detector configuration."""
    detector = AbuseDetector(store, DetectorConfig(use_index=use_index))
    detector.signatures.extend(signatures)

    started = time.perf_counter()
    match_results = [detector._match_existing(page) for page in pages]
    match_wall = time.perf_counter() - started

    started = time.perf_counter()
    flagged: List[str] = []
    for signature in rescan_signatures:
        detector.signatures.append(signature)
        flagged.extend(detector._rescan_history(signature))
    rescan_wall = time.perf_counter() - started

    matched_pages = sum(1 for m in match_results if m)
    return {
        "path": "indexed" if use_index else "linear",
        "match_wall_s": match_wall,
        "rescan_wall_s": rescan_wall,
        "wall_s": match_wall + rescan_wall,
        "matched_pages": matched_pages,
        "match_results": [
            [(sig.signature_id, sorted(components)) for sig, components in m]
            for m in match_results
        ],
        "flagged": flagged,
        "digest": hashlib.sha256(
            dataset_to_json(detector.dataset, indent=2).encode("utf-8")
        ).hexdigest(),
    }


def measure(n_signatures: int, n_pages: int, n_fqdns: int,
            states_per_fqdn: int, seed: int = 7) -> List[Dict]:
    rng = random.Random(seed)
    signatures = build_signatures(rng, n_signatures)
    pages = build_pages(rng, signatures, n_pages)
    store, abusive_states = build_store(rng, n_fqdns, states_per_fqdn)
    # The retrospective half replays freshly extracted signatures —
    # derived from real stored abuse states (as extraction would be),
    # so they genuinely hit history and back-date hijacks.
    rescan_rng = random.Random(seed + 1)
    rescan_signatures = [
        Signature(f"re-{serial:03d}", created_at=T0 + 4 * WEEK,
                  keywords=rescan_rng.choice(abusive_states))
        for serial in range(12)
    ]
    runs = [
        run_variant(use_index, signatures, pages, store, rescan_signatures)
        for use_index in (False, True)
    ]
    linear, indexed = runs
    # Parity is the contract: identical matches (same signatures, same
    # order), identical flagged sets, identical export digests.
    assert indexed["match_results"] == linear["match_results"], \
        "indexed match results diverged from the linear scan"
    assert indexed["flagged"] == linear["flagged"], \
        "indexed rescan flagged a different set"
    assert indexed["digest"] == linear["digest"], \
        "indexed export digest diverged from the linear path"
    return runs


def render(runs: List[Dict], scale_label: str) -> str:
    linear, indexed = runs
    speedup = linear["wall_s"] / max(indexed["wall_s"], 1e-9)
    rows = [
        (run["path"],
         f"{run['match_wall_s']:.3f}",
         f"{run['rescan_wall_s']:.3f}",
         f"{run['wall_s']:.3f}",
         run["matched_pages"],
         run["digest"][:12])
        for run in runs
    ]
    rows.append(("speedup (linear/indexed)", "-", "-", f"{speedup:.2f}x", "-", "-"))
    return render_table(
        ["path", "match s", "rescan s", "total s", "hits", "digest"],
        rows,
        title=f"Detector hot-scan cost, {scale_label} "
              "(match_existing + rescan_history; digests must agree)",
    )


def _speedup(runs: List[Dict]) -> float:
    linear, indexed = runs
    return linear["wall_s"] / max(indexed["wall_s"], 1e-9)


def test_indexed_detector_speedup(emit):
    runs = measure(**QUICK_SCALE)
    emit("detector_index", render(runs, "quick scale"))
    speedup = _speedup(runs)
    assert speedup >= QUICK_GATE, (
        f"indexed detector only {speedup:.2f}x over linear "
        f"(floor {QUICK_GATE}x at quick scale)"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced workload (CI smoke)")
    args = parser.parse_args(argv)
    scale = QUICK_SCALE if args.quick else PAPER_SCALE
    gate = QUICK_GATE if args.quick else PAPER_GATE
    label = "quick scale" if args.quick else "paper scale"
    runs = measure(**scale)
    table = render(runs, label)
    print(table)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "detector_index.txt").write_text(table + "\n",
                                                    encoding="utf-8")
    speedup = _speedup(runs)
    if speedup < gate:
        print(f"FAIL: {speedup:.2f}x < {gate}x gate", file=sys.stderr)
        return 1
    print(f"OK: {speedup:.2f}x >= {gate}x gate")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
