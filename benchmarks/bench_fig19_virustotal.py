"""Figure 19: VirusTotal blacklist counts for hijacked domains.

Paper: only 135 of 17,698 hijacked domains were flagged by at least one
AV vendor (18 by two or more) — blacklisting is too slow and sparse to
protect clients.
"""

from repro.core.malware_analysis import analyze_blacklisting
from repro.core.reporting import percent, render_table


def test_blacklist_sparsity(paper, benchmark, emit):
    report = benchmark(
        analyze_blacklisting, paper.dataset, paper.internet.virustotal,
        paper.internet.ct_log,
    )
    emit(
        "fig19_virustotal",
        render_table(
            ["statistic", "value", "paper"],
            [
                ("hijacked domains", report.total_domains, "17,698"),
                ("flagged by >= 1 vendor", report.flagged_once, "135"),
                ("flagged by >= 2 vendors", report.flagged_twice_plus, "18"),
                ("flagged share", percent(report.flagged_share), "0.76%"),
            ],
            title="Figure 19 — AV-vendor flags on hijacked domains",
        )
        + "\n\n"
        + render_table(
            ["first-cert month", "vendor flags"],
            report.points,
            title="flags vs first certificate issuance",
        ),
    )
    assert report.flagged_share < 0.10  # sparse, as in the paper
    assert report.flagged_twice_plus <= report.flagged_once
