"""Table 6: top TLDs among abused domains.

Paper: .com dominates (12,942 of 17,698), followed by org/net/uk/au,
with 218 TLDs affected overall.
"""

from repro.core.reporting import render_table
from repro.core.victimology import analyze_victims


def test_tld_distribution(paper, benchmark, emit):
    report = benchmark(analyze_victims, paper.dataset, paper.organizations)
    emit(
        "tab06_tlds",
        render_table(
            ["#", "TLD", "count"],
            [(i + 1, tld, count) for i, (tld, count) in enumerate(report.tld_counts)],
            title=f"Table 6 — top TLDs ({report.affected_tlds} affected; paper: 218, com-dominant)",
        ),
    )
    assert report.tld_counts[0][0] == "com"
    total = sum(count for _, count in report.tld_counts)
    assert report.tld_counts[0][1] / total > 0.4  # com majority
    assert report.affected_tlds >= 6
