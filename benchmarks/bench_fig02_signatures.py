"""Figure 2: % of detected hijacks per extracted-signature type.

Paper: keywords alone identify ~30% of domains; keywords+sitemap add
the biggest share (+36%); infrastructure indicators only help in
combination with keywords or sitemap features.
"""

from repro.core.detection import indicator_breakdown
from repro.core.reporting import percent, render_table


def test_indicator_breakdown(paper, benchmark, emit):
    rows = benchmark(indicator_breakdown, paper.dataset)
    emit(
        "fig02_signature_types",
        render_table(
            ["indicator combination", "domains", "share"],
            [(label, count, percent(share)) for label, count, share in rows],
            title="Figure 2 — detected hijacks by signature indicator type",
        ),
    )
    labels = {label for label, _, _ in rows}
    assert "(none)" not in labels
    # Keyword-bearing combinations dominate, as in the paper.
    keyword_share = sum(share for label, _, share in rows if "keywords" in label)
    assert keyword_share > 0.5
    assert abs(sum(share for _, _, share in rows) - 1.0) < 1e-9
