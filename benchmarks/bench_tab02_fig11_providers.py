"""Table 2 + Figure 11: abused cloud services among monitored domains.

Paper: Azure services host over half the abuse, AWS S3 + Elastic
Beanstalk about a third, the rest a long tail; per-service abuse rates
are fractions of a percent of the monitored base.
"""

from repro.core.provider_analysis import analyze_providers
from repro.core.reporting import percent, render_table


def test_table2_and_provider_shares(paper, benchmark, emit):
    report = benchmark(
        analyze_providers, paper.dataset, paper.organizations, paper.ground_truth
    )
    emit(
        "tab02_fig11_providers",
        render_table(
            ["service", "provider", "# monitored", "# abused", "% abused"],
            [
                (row.service_key, row.provider, row.monitored,
                 row.abused if row.abused else "-", percent(row.abuse_rate))
                for row in report.rows
            ],
            title="Table 2 — abused cloud services among monitored domains",
        )
        + "\n\n"
        + render_table(
            ["provider", "abuses"],
            report.provider_abuse_counts,
            title="Figure 11 — abuse by cloud provider",
        ),
    )
    shares = dict(report.provider_abuse_counts)
    total = sum(shares.values())
    # Azure hosts the majority, AWS roughly a third — the paper's split.
    assert shares["Azure"] / total > 0.4
    assert shares["Azure"] > shares.get("AWS", 0)
    assert 0.15 < shares.get("AWS", 0) / total < 0.5
    # Google Cloud (random names) shows zero abuse.
    assert "Google Cloud" not in shares
    for row in report.rows:
        assert row.abused <= row.monitored
