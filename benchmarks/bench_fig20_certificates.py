"""Figure 20: single-SAN vs multi-SAN certificates on hijacked domains.

Paper: 24,239 single-SAN vs 41,877 multi-SAN/wildcard certificates in
CT history; single-SAN bursts (95% and 53% by Let's Encrypt) mark the
hijackers' issuance campaigns, since HTTP-01 can prove only one
concrete name.
"""

from repro.core.cert_analysis import analyze_certificates
from repro.core.reporting import percent, render_table


def test_certificate_split(paper, benchmark, emit):
    report = benchmark(analyze_certificates, paper.dataset, paper.internet.ct_log)
    emit(
        "fig20_certificates",
        render_table(
            ["month", "single-SAN", "multi-SAN/wildcard"],
            [(month, single, multi) for month, single, multi in report.monthly],
            title=(
                f"Figure 20 — certificates for hijacked subdomains "
                f"(single {report.single_san_total} / multi {report.multi_san_total}; "
                f"free-CA share of single-SAN {percent(report.free_ca_share)})"
            ),
        )
        + "\n\n"
        + render_table(
            ["issuer", "single-SAN certs"], report.single_san_issuers,
            title="single-SAN issuers",
        ),
    )
    assert report.single_san_total > 0
    assert report.multi_san_total > 0
    # Free ACME CAs dominate single-SAN issuance (paper: ~95% / 53%).
    assert report.free_ca_share > 0.6
    issuers = dict(report.single_san_issuers)
    assert issuers.get("Let's Encrypt", 0) >= max(
        v for k, v in issuers.items() if k != "Let's Encrypt"
    )
