"""Attack-surface survey (prior-work apparatus: [3]/[12]/[18]).

Classifies every monitored FQDN's resolution chain and counts what
prior work would report as "vulnerable" — then narrows it to the subset
the paper shows attackers actually take: freetext names currently
available for deterministic re-registration.
"""

from repro.core.chains import survey_attack_surface
from repro.core.reporting import render_table


def test_attack_surface_survey(paper, benchmark, emit):
    fqdns = paper.collector.monitored_sorted
    survey = benchmark.pedantic(
        survey_attack_surface, args=(paper.internet, fqdns, paper.end),
        rounds=1, iterations=1,
    )
    emit(
        "attack_surface",
        render_table(
            ["chain status", "FQDNs"],
            survey.rows(),
            title=f"Attack surface over {survey.total} monitored FQDNs "
                  f"(final week; {survey.hijackable} deterministically hijackable)",
        )
        + "\n\n"
        + render_table(
            ["service", "hijackable names"],
            sorted(survey.hijackable_by_service.items(), key=lambda kv: -kv[1]),
            title="hijackable leftovers by service",
        ),
    )
    assert survey.total == len(fqdns)
    assert survey.dangling_total > 0
    # The dangling set always exceeds the genuinely hijackable subset —
    # the gap between prior work's counts and the paper's reality.
    assert survey.hijackable <= survey.dangling_total
