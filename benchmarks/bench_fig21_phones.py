"""Figure 21: geo-distribution of phone numbers on abuse pages.

Paper: 792 unique phone numbers found via WhatsApp links — all with
Asian country codes, primarily Indonesia and Cambodia.
"""

from repro.core.identifiers import extract_identifiers, phone_geo_distribution
from repro.core.reporting import render_table


def test_phone_geo_distribution(paper, benchmark, emit):
    identifier_map = benchmark(extract_identifiers, paper.dataset, paper.monitor.store)
    distribution = phone_geo_distribution(identifier_map)
    emit(
        "fig21_phone_geo",
        render_table(
            ["country", "unique phone numbers"],
            distribution,
            title=(
                f"Figure 21 — phone numbers by country code "
                f"({len(identifier_map.phones)} unique; paper: 792, all Asian)"
            ),
        ),
    )
    assert identifier_map.phones
    countries = dict(distribution)
    assert max(countries, key=countries.get) == "ID"  # Indonesia first
    asian = {"ID", "KH", "TH", "VN", "MY", "PH"}
    assert sum(v for k, v in countries.items() if k in asian) == sum(countries.values())
