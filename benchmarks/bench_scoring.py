"""Detector scoring against ground truth (reproduction extension).

The paper can only validate detections forward (manual inspection,
victim confirmation); the simulator also knows what was missed.
"""

from repro.core.reporting import percent, render_table
from repro.core.scoring import score_detector


def test_detector_scoring(paper, benchmark, emit):
    score = benchmark(score_detector, paper.dataset, paper.ground_truth)
    emit(
        "extension_scoring",
        render_table(
            ["metric", "value"],
            [
                ("true positives", score.true_positives),
                ("false positives", score.false_positives),
                ("false negatives", score.false_negatives),
                ("precision", percent(score.precision)),
                ("recall", percent(score.recall)),
                ("F1", percent(score.f1)),
                ("median detection latency (days)", score.median_latency_days),
            ],
            title="Extension — detector quality vs simulation ground truth",
        ),
    )
    assert score.precision > 0.95  # the paper's manual validation bar
    assert score.recall > 0.85
    assert score.median_latency_days is not None
    assert score.median_latency_days <= 21
