"""Figure 4: Tranco rank of SLDs vs hijacked subdomain counts.

Paper: 39.8% of hijacked FQDNs sit on Tranco-listed SLDs; a ranked SLD
averages ~1.89 hijacked subdomains, spread across the whole rank range.
"""

from repro.core.reporting import percent, render_table
from repro.core.victimology import analyze_victims


def test_tranco_rank_scatter(paper, benchmark, emit):
    report = benchmark(analyze_victims, paper.dataset, paper.organizations)
    emit(
        "fig04_tranco_rank",
        render_table(
            ["tranco rank", "hijacked subdomains"],
            report.tranco_rank_points,
            title=(
                f"Figure 4 — hijacks on Tranco-ranked SLDs "
                f"(covered share {percent(report.tranco_covered_share)}, "
                f"paper 39.8%; mean per ranked SLD "
                f"{report.hijacks_per_tranco_sld:.2f}, paper 1.89)"
            ),
        ),
    )
    assert 0.2 < report.tranco_covered_share < 0.95
    assert 1.0 <= report.hijacks_per_tranco_sld < 6.0
    ranks = [rank for rank, _ in report.tranco_rank_points]
    assert len(ranks) == len(set(ranks))
