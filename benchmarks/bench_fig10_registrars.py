"""Figure 10: % of abuse clusters spanning >= X registrars.

Paper: 89% of multi-domain same-change clusters span 2+ registrars
(33% span 4+), proving the changes are third-party, not registrar
rollouts.
"""

from repro.core.registrar_analysis import analyze_registrar_diversity
from repro.core.reporting import percent, render_table


def test_registrar_diversity_curve(paper, benchmark, emit):
    report = benchmark(
        analyze_registrar_diversity, paper.dataset, paper.internet.whois
    )
    emit(
        "fig10_registrar_diversity",
        render_table(
            [">= X registrars", "share of multi-domain clusters"],
            [(x, percent(share)) for x, share in report.curve()],
            title=(
                f"Figure 10 — registrar diversity of same-change clusters "
                f"({report.multi_domain_clusters} clusters; paper: 89% span 2+, 33% span 4+)"
            ),
        ),
    )
    assert report.multi_domain_clusters >= 3
    assert report.share_spanning_2plus > 0.7
    assert report.share_spanning_4plus > 0.2
    # The curve is non-increasing by construction.
    shares = [share for _, share in report.curve()]
    assert shares == sorted(shares, reverse=True)
