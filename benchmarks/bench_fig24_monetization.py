"""Figure 24 / Section 5.3: the referral-traffic revenue ecosystem.

Paper: hijacked domains relay visitors to gambling sites with a
referral code attached; the site pays per page view, more per account
sign-up, and most for money spent.  The referral ID also shows that
site operators and hijackers are distinct entities.
"""

from repro.core.reporting import render_table


def test_referral_revenue(paper, benchmark, emit):
    ledger = paper.monetization.ledger
    payouts = benchmark(ledger.payouts)
    counts = ledger.event_counts()
    emit(
        "fig24_monetization",
        render_table(
            ["referral code", "payout (USD)"],
            [(code, round(total, 2)) for code, total in payouts],
            title=f"Figure 24 — referral accounting "
                  f"({len(ledger)} paid events across "
                  f"{paper.monetization.operator_count} paymaster sites)",
        )
        + "\n\n"
        + render_table(
            ["event kind", "count"], sorted(counts.items()),
            title="conversion funnel",
        )
        + "\n\n"
        + render_table(
            ["hijacked source domain", "relayed visits"],
            ledger.top_referring_domains(10),
            title="top traffic-referring hijacks",
        ),
    )
    assert len(ledger) > 50
    # Funnel shape: views >> signups >= deposits.
    assert counts["view"] > counts.get("signup", 0) >= counts.get("deposit", 0)
    # Revenue flows to the attacker groups' codes; every source is a hijack.
    group_codes = {g.referral_code for g in paper.groups if g.referral_code}
    assert {code for code, _ in payouts} <= group_codes
    sources = {f for f, _ in ledger.top_referring_domains(10_000)}
    assert sources <= set(paper.ground_truth.hijacked_fqdns())