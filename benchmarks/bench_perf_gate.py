"""The ``repro perf`` regression gate, exercised end-to-end.

Runs the seeded tiny scenario twice with ``--metrics-json`` and drives
the gate through its whole contract in one pass:

* the two same-seed exports must pass ``repro perf --check`` (their
  deterministic views — week-by-week counter deltas plus final
  counters — are equal), and must also pass the timing comparison
  against the committed baseline's *deterministic* view, which is how
  CI catches a seed-breaking change without coupling to machine speed;
* a copy of the export with a synthetic +50% slowdown injected into
  every stage's resource rows must FAIL the timing gate (exit 1);
* a copy with one counter perturbed must FAIL ``--check`` (exit 1);
* garbage must be rejected as malformed (exit 2).

The committed baseline ``benchmarks/results/perf_baseline_tiny.json``
is the deterministic view of the tiny scenario at seed 42 — regenerate
it with ``python benchmarks/bench_perf_gate.py --update-baseline``
whenever an intentional behaviour change moves the counters, exactly
like the golden digests.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List, Optional

from repro.cli import main as repro_main
from repro.core.reporting import render_table
from repro.obs.perf import EXIT_MALFORMED, EXIT_OK, EXIT_REGRESSION
from repro.obs.timeseries import deterministic_view

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BASELINE_PATH = RESULTS_DIR / "perf_baseline_tiny.json"

#: The pinned gate scenario: tiny, fault-free, deterministic — and
#: **serial**.  Worker cache-split counters (resolver memo, zone memo,
#: extraction cache) depend on whether shards fork or run inline, which
#: the executor auto-detects from the machine's CPU count; workers=1
#: removes that machine-dependence so the committed baseline checks
#: identically everywhere.
RUN_ARGS = ["run", "--scale", "tiny", "--seed", "42", "--weeks", "12",
            "--workers", "1"]


class _Sink:
    def write(self, text: str) -> None:
        pass


def _export_metrics(path: pathlib.Path) -> Dict:
    code = repro_main(RUN_ARGS + ["--metrics-json", str(path)], out=_Sink())
    assert code == 0, f"scenario run failed with exit {code}"
    return json.loads(path.read_text())


def _perf(*argv: str) -> int:
    return repro_main(["perf", *argv], out=_Sink())


def run_gate(tmp_dir: pathlib.Path) -> List[Dict]:
    """Drive every gate verdict once; returns render-ready check rows."""
    a_path = tmp_dir / "run_a.json"
    b_path = tmp_dir / "run_b.json"
    export_a = _export_metrics(a_path)
    _export_metrics(b_path)

    rows: List[Dict] = []

    def check(name: str, got: int, want: int) -> None:
        rows.append({"check": name, "exit": got, "expected": want,
                     "verdict": "ok" if got == want else "FAIL"})
        assert got == want, f"{name}: exit {got}, expected {want}"

    check("same-seed rerun, --check", _perf(str(a_path), str(b_path), "--check"),
          EXIT_OK)
    # The timing row exists to exercise the comparison path, not to
    # gate real noise: back-to-back runs on a loaded box can jitter a
    # short stage past the default 1.20x/25ms, so give it headroom.
    check(
        "same-seed rerun, timing",
        _perf(str(a_path), str(b_path), "--threshold", "3.0",
              "--min-ms", "250"),
        EXIT_OK,
    )

    if BASELINE_PATH.exists():
        check(
            "committed baseline, --check",
            _perf(str(BASELINE_PATH), str(a_path), "--check"),
            EXIT_OK,
        )

    slow = json.loads(json.dumps(export_a))
    for row in slow["resources"]["stages"].values():
        row["wall_s"] *= 1.5
        row["cpu_s"] *= 1.5
    slow_path = tmp_dir / "slow.json"
    slow_path.write_text(json.dumps(slow))
    check(
        "+50% stage slowdown, timing",
        _perf(str(a_path), str(slow_path), "--min-ms", "1"),
        EXIT_REGRESSION,
    )

    drifted = json.loads(json.dumps(export_a))
    key = sorted(drifted["counters"])[0]
    drifted["counters"][key] += 1
    drift_path = tmp_dir / "drift.json"
    drift_path.write_text(json.dumps(drifted))
    check("counter drift, --check", _perf(str(a_path), str(drift_path), "--check"),
          EXIT_REGRESSION)

    garbage = tmp_dir / "garbage.txt"
    garbage.write_text("not a telemetry export\n")
    check("malformed input", _perf(str(a_path), str(garbage)), EXIT_MALFORMED)
    return rows


def render(rows: List[Dict]) -> str:
    return render_table(
        ["gate check", "exit", "expected", "verdict"],
        [(r["check"], r["exit"], r["expected"], r["verdict"]) for r in rows],
        title="repro perf gate verdicts (tiny scenario, seed 42)",
    )


def write_baseline(export: Dict) -> None:
    """Commit the deterministic view as the cross-machine baseline.

    Only the seed-determined slice goes in: resource timings would pin
    the baseline to the machine that generated it.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    BASELINE_PATH.write_text(
        json.dumps(deterministic_view(export), indent=2) + "\n",
        encoding="utf-8",
    )


# -- pytest entry point ----------------------------------------------------


def test_perf_gate_end_to_end(emit, tmp_path):
    rows = run_gate(tmp_path)
    table = render(rows)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "perf_gate.txt").write_text(table + "\n", encoding="utf-8")
    emit("perf_gate", table)


# -- standalone entry point ------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update-baseline", action="store_true",
                        help="regenerate the committed deterministic "
                             "baseline from a fresh seeded run")
    args = parser.parse_args(argv)
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        tmp_dir = pathlib.Path(tmp)
        if args.update_baseline:
            export = _export_metrics(tmp_dir / "baseline_run.json")
            write_baseline(export)
            print(f"baseline written to {BASELINE_PATH}")
            return 0
        rows = run_gate(tmp_dir)
    table = render(rows)
    (RESULTS_DIR / "perf_gate.txt").write_text(table + "\n", encoding="utf-8")
    print(table)
    return 0


if __name__ == "__main__":
    sys.exit(main())
