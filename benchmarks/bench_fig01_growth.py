"""Figure 1: monitored vs (cumulative) hijacked cloud domains over time.

Paper: the monitored set roughly doubles from 1.5M to 3.1M FQDNs over
three years while cumulative detected abuses climb continuously.
"""

from repro.core.growth import growth_factor, growth_series
from repro.core.reporting import render_table


def test_growth_series(paper, benchmark, emit):
    points = benchmark(growth_series, paper.collector, paper.dataset)
    emit(
        "fig01_growth",
        render_table(
            ["month", "monitored", "cumulative abused"],
            [(p.month, p.monitored, p.cumulative_abused) for p in points],
            title="Figure 1 — monitored vs hijacked cloud-hosted domains",
        ),
    )
    factor = growth_factor(points)
    assert 1.3 < factor < 4.0  # paper: ~2.06x
    # Both series are monotone non-decreasing.
    assert [p.monitored for p in points] == sorted(p.monitored for p in points)
    assert points[-1].cumulative_abused == len(paper.dataset)
    # Abuse accumulates over the whole window, not in one burst.
    assert points[len(points) // 2].cumulative_abused < points[-1].cumulative_abused
