"""Micro-benchmarks of the pipeline's hot paths.

Not a paper artifact — throughput numbers for the operations the
longitudinal pipeline performs millions of times: Algorithm-1
collection, weekly monitor sampling, and recursive resolution, plus the
per-stage wall-time/throughput table sourced from the engine's
:class:`~repro.pipeline.metrics.PipelineMetrics` registry (the same
table ``python -m repro pipeline`` prints).
"""

from repro.core.collection import collect_fqdns
from repro.core.monitoring import MonitorConfig, WeeklyMonitor
from repro.core.reporting import render_table
from repro.core.scenario import ScenarioConfig, run_scenario
from repro.obs import OBS, MetricsRegistry, Tracer


def test_algorithm1_throughput(paper, benchmark):
    names = paper.collector.monitored_sorted[:500]
    internet = paper.internet
    selected = benchmark(
        collect_fqdns, names, internet.catalog.suffixes,
        internet.catalog.cloud_ips, internet.resolver,
    )
    assert len(selected) >= len(names) // 2


def test_resolver_throughput(paper, benchmark):
    names = paper.collector.monitored_sorted[:500]
    resolver = paper.internet.resolver

    def resolve_all():
        return sum(1 for n in names if resolver.resolve_a_with_chain(n).ok)

    resolved = benchmark(resolve_all)
    assert resolved > 0


def test_monitor_sample_throughput(paper, benchmark):
    names = paper.collector.monitored_sorted[:200]
    monitor = WeeklyMonitor(paper.internet.client, config=MonitorConfig())

    def sweep_once():
        return monitor.sweep(names, paper.end)

    benchmark.pedantic(sweep_once, rounds=3, iterations=1)
    assert monitor.samples_taken >= 200


def test_pipeline_stage_timings(emit):
    """Per-stage engine instrumentation over a tiny end-to-end run.

    Runs standalone in seconds (no ``paper`` fixture) so CI can smoke
    it per PR; the emitted table makes stage-level perf regressions
    visible in ``benchmarks/results/``.
    """
    result = run_scenario(ScenarioConfig.tiny())
    metrics = result.metrics
    assert metrics is not None
    rows = metrics.rows()
    assert [row[0] for row in rows] == [
        "world", "orchestrator", "users", "collector-refresh",
        "monitor-sweep", "change-detect", "detect", "notify", "harvest",
    ]
    for row in rows:
        assert row[1] == result.weeks_run  # every stage ticked every week
    sweep = metrics.stage("monitor-sweep")
    assert sweep.items_processed > 0 and sweep.wall_time > 0
    emit(
        "pipeline_stage_timings",
        render_table(
            ["stage", "ticks", "wall s", "mean tick ms", "items", "items/s",
             "retries", "fail+skip", "quarantined"],
            rows,
            title=f"Pipeline stage metrics (tiny, {result.weeks_run} weeks)",
        ),
    )


def test_observability_registry(emit):
    """Hot-path counters off a traced tiny 2-worker run.

    The same registry ``--metrics``/``profile`` read: asserts the
    instrumentation actually fires on the sweep hot path (resolver
    memo, zone memos, sample-path split) and emits the counter table
    next to the stage timings in ``benchmarks/results/``.
    """
    registry = MetricsRegistry()
    tracer = Tracer(sample_every=1)  # aggregate-only, no file
    config = ScenarioConfig.tiny()
    config.workers = 2
    OBS.configure(metrics=registry, tracer=tracer)
    try:
        result = run_scenario(config)
    finally:
        OBS.reset()
        tracer.close()
    counters = registry.counters()
    assert counters["resolver.queries"] > 0
    assert counters["monitor.samples"] > 0
    assert counters["zone.lookup.memo_misses"] > 0
    assert counters.get("sweep.shards.fused", 0) > 0
    sampled = (
        counters.get("journal.clean_skips", 0)
        + counters.get("sweep.sample.touch", 0)
        + counters.get("sweep.sample.full", 0)
        + counters.get("sweep.sample.generic", 0)
    )
    sweep = result.metrics.stage("monitor-sweep")
    assert sampled == sweep.items_processed
    spans = tracer.aggregates()
    assert "stage.monitor-sweep" in spans and "sweep.shard" in spans
    emit(
        "observability_registry",
        render_table(
            ["series", "value"], registry.rows(),
            title=f"Metrics registry (tiny, {result.weeks_run} weeks, 2 workers)",
        ),
    )
