"""Micro-benchmarks of the pipeline's hot paths.

Not a paper artifact — throughput numbers for the three operations the
longitudinal pipeline performs millions of times: Algorithm-1
collection, weekly monitor sampling, and recursive resolution.
"""

from repro.core.collection import collect_fqdns
from repro.core.monitoring import MonitorConfig, WeeklyMonitor


def test_algorithm1_throughput(paper, benchmark):
    names = sorted(paper.collector.monitored)[:500]
    internet = paper.internet
    selected = benchmark(
        collect_fqdns, names, internet.catalog.suffixes,
        internet.catalog.cloud_ips, internet.resolver,
    )
    assert len(selected) >= len(names) // 2


def test_resolver_throughput(paper, benchmark):
    names = sorted(paper.collector.monitored)[:500]
    resolver = paper.internet.resolver

    def resolve_all():
        return sum(1 for n in names if resolver.resolve_a_with_chain(n).ok)

    resolved = benchmark(resolve_all)
    assert resolved > 0


def test_monitor_sample_throughput(paper, benchmark):
    names = sorted(paper.collector.monitored)[:200]
    monitor = WeeklyMonitor(paper.internet.client, config=MonitorConfig())

    def sweep_once():
        return monitor.sweep(names, paper.end)

    benchmark.pedantic(sweep_once, rounds=3, iterations=1)
    assert monitor.samples_taken >= 200
