"""Figure 26: organizations and countries behind referenced IPs.

Paper: 3,553 unique backend IPs, mostly at hosting providers,
concentrated in the US, France and Singapore — cloud hosting hides the
attackers' own location.
"""

from repro.core.identifiers import extract_identifiers, ip_countries, ip_organizations
from repro.core.reporting import render_table


def test_backend_ip_intelligence(paper, benchmark, emit):
    identifier_map = extract_identifiers(paper.dataset, paper.monitor.store)
    organizations = benchmark(ip_organizations, identifier_map, paper.internet.geoip)
    countries = ip_countries(identifier_map, paper.internet.geoip)
    emit(
        "fig26_backend_ips",
        render_table(["organization", "IPs"], organizations,
                     title="Figure 26a — hosting orgs behind referenced IPs")
        + "\n\n"
        + render_table(["country", "IPs"], countries,
                       title="Figure 26b — geolocation of referenced IPs"),
    )
    assert identifier_map.ips
    # All IPs land at hosting providers (none unattributed).
    assert all(name != "(unknown)" for name, _ in organizations)
    country_set = {c for c, _ in countries}
    assert country_set & {"US", "FR", "SG"}  # the paper's concentration
