"""Section 5.2.3's consequence, measured: search-result poisoning.

The paper explains the mechanism (inherited reputation + SEO signals);
with a search engine in the simulation the outcome is quantifiable:
for Indonesian-gambling queries, hijacked subdomains of reputable
organizations flood the top results.
"""

import pytest

from repro.core.reporting import percent, render_table
from repro.core.search_poisoning import measure_poisoning
from repro.search.crawler import Crawler
from repro.search.engine import SearchEngine


@pytest.fixture(scope="module")
def engine(paper):
    engine = SearchEngine(
        Crawler(paper.internet.client, pages_per_host=3),
        paper.internet.whois,
        paper.internet.ct_log,
    )
    engine.crawl(paper.collector.monitored_sorted, paper.end)
    return engine


def test_search_poisoning(paper, engine, benchmark, emit):
    report = benchmark(measure_poisoning, engine, paper.dataset, paper.end)
    emit(
        "section523_search_poisoning",
        render_table(
            ["query", "poisoned results (top 10)", "share", "best poisoned rank"],
            report.rows(),
            title=(
                f"Search poisoning — {report.indexed_pages} pages on "
                f"{report.indexed_hosts} hosts indexed; mean poisoned share "
                f"{percent(report.mean_poisoned_share)}"
            ),
        ),
    )
    gambling = next(q for q in report.queries if q.query == "slot gacor")
    assert gambling.poisoned_share >= 0.5
    assert gambling.best_poisoned_rank in (1, 2, 3)
    # A query in the benign cloud-asset vocabulary stays (almost) clean.
    corporate = engine.search("portal access administrator", paper.end, limit=10)
    hijacked = set(paper.dataset.abused_fqdns())
    clean = sum(1 for r in corporate if r.fqdn not in hijacked)
    assert corporate and clean >= len(corporate) * 0.7
