"""Section 5.5: stolen authentication cookies in darknet leaks.

Paper: 83 unique authentication cookies surfaced in darknet leaks
during hijack windows, tied to 3 hijacked subdomains and 53 victim IPs.
"""

from repro.core.cookie_analysis import correlate_cookie_leaks
from repro.core.reporting import render_table


def test_cookie_leak_correlation(paper, benchmark, emit):
    report = benchmark(correlate_cookie_leaks, paper.dataset, paper.internet.darknet)
    emit(
        "section55_cookies",
        render_table(
            ["statistic", "value", "paper"],
            [
                ("matched auth-cookie leaks", report.total, "-"),
                ("unique cookies", report.unique_cookies, "83"),
                ("hijacked subdomains involved", len(report.affected_subdomains), "3"),
                ("victim IPs", len(report.victim_ips), "53"),
            ],
            title="Section 5.5 — darknet cookie leaks during hijack windows",
        ),
    )
    # Cookie theft exists but is a small phenomenon compared to SEO.
    assert report.unique_cookies > 0
    assert len(report.affected_subdomains) < len(paper.dataset) / 2
    for leak in report.matched_leaks:
        assert leak.cookie.is_authentication
