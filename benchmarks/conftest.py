"""Benchmark fixtures.

``paper`` is the full three-year default scenario — one deterministic
run shared by every benchmark (building it takes ~30 s; each benchmark
then measures its *analysis* over the shared world).  Every benchmark
also writes its rendered table/figure to ``benchmarks/results/`` so the
reproduced artifacts survive pytest's output capture.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.core.scenario import ScenarioConfig, run_scenario

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def paper():
    """The full-scale (156-week) simulated measurement."""
    return run_scenario(ScenarioConfig())


@pytest.fixture(scope="session")
def emit():
    """Write (and echo) a rendered artifact for one experiment."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n=== {name} ===\n{text}\n")

    return _emit
