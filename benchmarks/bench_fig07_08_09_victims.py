"""Figures 7/8/9: top abused Tranco sites, Fortune 500 firms, universities.

Paper: 8,432 Tranco-listed victims; 31% of the Fortune 500 and 25.4% of
the Global 500 abused; 264 abused university subdomains worldwide.
"""

from repro.core.reporting import percent, render_table
from repro.core.victimology import analyze_victims, top_victims
from repro.world.organizations import OrgKind


def _rows(pairs):
    return [
        (org.display_name, org.domain,
         org.fortune500_rank or org.qs_rank or org.tranco_rank or "-", count)
        for org, count in pairs
    ]


def test_top_victims_by_segment(paper, benchmark, emit):
    report = analyze_victims(paper.dataset, paper.organizations)
    tranco = benchmark(
        top_victims, paper.dataset, paper.organizations, None, 25
    )
    fortune = top_victims(
        paper.dataset, paper.organizations, kind=OrgKind.ENTERPRISE, limit=25
    )
    universities = top_victims(
        paper.dataset, paper.organizations, kind=OrgKind.UNIVERSITY, limit=25
    )
    emit(
        "fig07_08_09_victims",
        "\n\n".join(
            [
                render_table(["organization", "domain", "rank", "hijacks"],
                             _rows(tranco),
                             title="Figure 7 — top abused organizations (Tranco view)"),
                render_table(["organization", "domain", "rank", "hijacks"],
                             _rows(fortune),
                             title=f"Figure 8 — abused enterprises "
                                   f"(Fortune 500 share {percent(report.fortune500_share)}, paper 31%; "
                                   f"Global 500 share {percent(report.global500_share)}, paper 25.4%)"),
                render_table(["organization", "domain", "rank", "hijacks"],
                             _rows(universities),
                             title=f"Figure 9 — abused universities "
                                   f"({report.universities_abused} hijacked subdomains, paper 264)"),
            ]
        ),
    )
    # Shape: a substantial minority of big enterprises got hit; many
    # victims were hit more than once; universities are among victims.
    assert 0.1 < report.fortune500_share < 0.8
    assert 0.05 < report.global500_share < 0.8
    assert report.universities_abused > 0
    assert report.multi_subdomain_orgs > 0
    assert report.max_subdomains_per_org >= 3
