"""Table 3 + Section 4.3: every hijack targets a user-nameable resource.

Paper's headline structural result: all 20,904 hijacks exploited
freetext-named resources; zero IP takeovers and zero abuses of services
with random identifiers (Google Cloud) appear in the dataset.
"""

from repro.core.provider_analysis import analyze_providers
from repro.core.reporting import render_table


def test_user_nameable_invariant(paper, benchmark, emit):
    report = benchmark(
        analyze_providers, paper.dataset, paper.organizations, paper.ground_truth
    )
    rows = report.table3_rows()
    emit(
        "tab03_user_nameable",
        render_table(
            ["provider", "configurable subdomain", "function", "abuses"],
            [(r.provider, r.template, r.function, r.abused) for r in rows],
            title="Table 3 — abused user-nameable resources",
        )
        + "\n\n"
        + render_table(
            ["naming policy", "takeovers"],
            [
                ("freetext (user-nameable)", report.freetext_abuses),
                ("random identifier", report.random_name_abuses),
                ("dedicated IP (lottery)", report.dedicated_ip_abuses),
            ],
            title="Section 4.3 — takeovers by allocation discipline (paper: 100% freetext)",
        ),
    )
    # The invariant itself.
    assert report.all_abuses_user_nameable
    assert report.freetext_abuses == len(paper.ground_truth)
    assert report.random_name_abuses == 0
    assert report.dedicated_ip_abuses == 0
    # Azure Web Apps top the table, as in the paper.
    assert rows[0].service_key == "azure-web-app"
