"""Figure 12: abused content by enterprise sector.

Paper: Industrials, Energy and Motor Vehicles lead in hijack volume,
but the abuse is widespread across all sectors rather than targeted.
"""

from repro.core.reporting import render_table
from repro.core.victimology import analyze_victims


def test_sector_spread(paper, benchmark, emit):
    report = benchmark(analyze_victims, paper.dataset, paper.organizations)
    emit(
        "fig12_sectors",
        render_table(
            ["sector", "hijacks"],
            report.sector_counts,
            title="Figure 12 — abused content by sector",
        ),
    )
    sectors = dict(report.sector_counts)
    assert len(sectors) >= 6  # widespread, not localized
    top_sector, top_count = report.sector_counts[0]
    assert top_count / sum(sectors.values()) < 0.5  # no single-sector story
    heavy = {"Industrials", "Energy", "Motor Vehicles & Parts"}
    top3 = {name for name, _ in report.sector_counts[:5]}
    assert heavy & top3  # the big-estate sectors rank high
