"""Section 4.3 economics: why attackers avoid the IP lottery.

Quantifies the cost asymmetry the paper infers from the absence of IP
takeovers: re-registering a freetext name takes one free attempt, while
winning one specific released address back from a provider pool takes
an expected free-pool-size number of paid allocation rounds.
"""

import random

from repro.core.economics import (
    cost_advantage,
    freetext_cost,
    ip_lottery_cost,
    simulate_lottery,
)
from repro.core.reporting import render_table
from repro.net.addresses import IPv4Pool


def test_empirical_lottery(benchmark, emit):
    """Actually play the lottery on a small pool: the empirical mean
    number of attempts matches the analytic expectation (pool size)."""
    rng = random.Random(1234)

    def play_once():
        pool = IPv4Pool(["10.0.0.0/24"])  # 256 addresses
        target = pool.allocate(rng)
        pool.release(target)
        return simulate_lottery(pool, target, rng, max_attempts=20_000)

    attempts = [play_once() for _ in range(30)]
    benchmark(play_once)
    mean_attempts = sum(attempts) / len(attempts)
    emit(
        "section43_lottery_empirical",
        render_table(
            ["quantity", "value"],
            [
                ("pool size", 256),
                ("empirical mean attempts (30 plays)", round(mean_attempts, 1)),
                ("analytic expectation", 256),
                ("min / max observed", f"{min(attempts)} / {max(attempts)}"),
            ],
            title="Section 4.3 — the IP lottery, played empirically",
        ),
    )
    # Geometric distribution: the mean lands near the pool size.
    assert 256 * 0.5 < mean_attempts < 256 * 2.0


def test_takeover_economics(paper, benchmark, emit):
    aws_pool = paper.internet.catalog.provider("AWS").pool
    freetext = freetext_cost()
    lottery = benchmark(ip_lottery_cost, aws_pool)
    warm = ip_lottery_cost(aws_pool, warm_fraction=0.9)
    emit(
        "section43_economics",
        render_table(
            ["strategy", "expected attempts", "cost/attempt ($)", "expected cost ($)"],
            [
                (freetext.strategy, freetext.expected_attempts,
                 freetext.cost_per_attempt_usd, freetext.expected_cost_usd),
                (lottery.strategy, lottery.expected_attempts,
                 lottery.cost_per_attempt_usd, round(lottery.expected_cost_usd, 2)),
                (f"{warm.strategy} (90% warm reuse)", round(warm.expected_attempts),
                 warm.cost_per_attempt_usd, round(warm.expected_cost_usd, 2)),
            ],
            title="Section 4.3 — cost of acquiring one specific identity",
        ),
    )
    advantage = cost_advantage(freetext, lottery)
    assert advantage > 10_000  # orders of magnitude cheaper
    assert warm.expected_attempts < lottery.expected_attempts
