"""Table 5 + keyword stuffing: meta-tag keywords on hijacked content.

Paper: 41% of abusive pages carry a stuffed keywords meta tag; the top
terms are Indonesian gambling vocabulary (slot, judi, situs, gacor...).
"""

from repro.content.vocab import GAMBLING_KEYWORDS
from repro.core.reporting import percent, render_table
from repro.core.seo_analysis import analyze_seo


def test_meta_keyword_stuffing(paper, benchmark, emit):
    report = benchmark.pedantic(
        analyze_seo,
        args=(paper.dataset, paper.monitor.store, paper.internet.client, paper.end),
        rounds=3, iterations=1,
    )
    emit(
        "tab05_meta_keywords",
        render_table(
            ["#", "keyword", "count"],
            [(i + 1, kw, count) for i, (kw, count) in enumerate(report.top_meta_keywords)],
            title=(
                f"Table 5 — top meta-tag keywords "
                f"(stuffing rate {percent(report.keyword_stuffing_page_rate)}, paper 41%)"
            ),
        ),
    )
    assert 0.25 < report.keyword_stuffing_page_rate < 0.6
    gambling_tokens = set()
    for phrase in GAMBLING_KEYWORDS:
        gambling_tokens.update(phrase.split())
    top = [kw for kw, _ in report.top_meta_keywords]
    assert sum(1 for kw in top if set(kw.split()) & gambling_tokens) >= 5
