"""Figure 5: abused second-level domains vs subdomains.

Paper: 17,698 abused FQDNs, of which 1,565 are SLD-level; the vast
majority of hijacks live on forgotten *subdomains*.
"""

from repro.core.reporting import render_table
from repro.core.victimology import analyze_victims


def test_sld_vs_subdomain_split(paper, benchmark, emit):
    report = benchmark(analyze_victims, paper.dataset, paper.organizations)
    emit(
        "fig05_sld_vs_subdomains",
        render_table(
            ["category", "count"],
            [
                ("abused FQDNs", report.abused_fqdns),
                ("  at SLD / www level", report.sld_level_abuses),
                ("  at deeper subdomains", report.subdomain_abuses),
                ("distinct SLDs affected", report.abused_slds),
            ],
            title="Figure 5 — abused SLDs vs subdomains (paper: 1,565 of 17,698 SLD-level)",
        ),
    )
    assert report.subdomain_abuses > report.sld_level_abuses
    assert report.abused_slds <= report.abused_fqdns
