"""Section 5.6.2: CAA records are not an effective countermeasure.

Paper: only 2% of parent domains publish CAA (0.4% restrict to paid
CAs); half of the CAA-protected parents still had hijacked subdomains
with valid certificates, because attackers simply use an authorized CA.
"""

from repro.core.cert_analysis import analyze_caa
from repro.core.reporting import percent, render_table


def test_caa_ineffectiveness(paper, benchmark, emit):
    report = benchmark(
        analyze_caa, paper.dataset, paper.internet.zones, paper.internet.ct_log
    )
    emit(
        "section562_caa",
        render_table(
            ["statistic", "value", "paper"],
            [
                ("abused parent domains", report.parent_domains, "-"),
                ("parents with CAA", f"{report.parents_with_caa} ({percent(report.caa_share)})", "2%"),
                ("parents restricting to paid CAs",
                 f"{report.parents_paid_only} ({percent(report.paid_only_share)})", "0.4%"),
                ("CAA parents with certified hijacks",
                 report.caa_parents_still_certified, "about half"),
            ],
            title="Section 5.6.2 — CAA deployment on abused parents",
        ),
    )
    assert report.caa_share < 0.10  # CAA is rare
    assert report.parents_paid_only <= report.parents_with_caa
