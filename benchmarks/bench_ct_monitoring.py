"""Section 5.6.3: CT monitoring as a countermeasure, measured.

Paper: CT monitoring alerts the owner within hours of a hijacker's
certificate issuance — but only when the attacker chooses to get one.
"""

from repro.core.ct_monitoring import evaluate_ct_monitoring
from repro.core.reporting import percent, render_histogram, render_table


def test_ct_monitoring_effectiveness(paper, benchmark, emit):
    report = benchmark(
        evaluate_ct_monitoring, paper.ground_truth, paper.internet.ct_log
    )
    emit(
        "section563_ct_monitoring",
        render_table(
            ["metric", "value"],
            [
                ("hijacks (ground truth)", report.total_hijacks),
                ("would have tripped a CT monitor", report.alerted_count),
                ("coverage", percent(report.coverage)),
                ("median alert latency (days)", report.median_latency_days),
            ],
            title="Section 5.6.3 — CT monitoring as a tripwire",
        )
        + "\n\n"
        + render_histogram(report.latency_histogram(), title="alert latency histogram"),
    )
    # Fast where it fires, blind where no certificate is issued.
    assert 0.05 < report.coverage < 0.9
    assert report.median_latency_days is not None
    assert report.median_latency_days <= 7.0
