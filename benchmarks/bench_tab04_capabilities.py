"""Table 4 + Figure 17: attacker capabilities per cloud resource type.

Paper: storage/CMS resources grant file/content/html/javascript;
web apps, orchestration, CDN/LB and VMs additionally grant headers and
https — which decides which cookies are stealable (Section 5.5).
"""

from repro.core.capabilities_analysis import capability_table, cookie_theft_matrix
from repro.core.reporting import render_table


def test_capability_model(paper, benchmark, emit):
    rows = benchmark(capability_table)
    matrix = cookie_theft_matrix()
    emit(
        "tab04_capabilities",
        render_table(
            ["service", "function", "access", "capabilities"],
            [(r.service_key, r.function, r.access, ", ".join(r.capabilities)) for r in rows],
            title="Table 4 — attacker capabilities by cloud resource",
        )
        + "\n\n"
        + render_table(
            ["control level", "HttpOnly", "Secure", "stealable"],
            [(c.access, c.http_only, c.secure, c.stealable) for c in matrix],
            title="Section 5.5 — cookie-theft matrix",
        ),
    )
    by_key = {r.service_key: r for r in rows}
    assert not by_key["aws-s3-static"].has_https
    assert not by_key["pantheon-site"].has_headers
    for key in ("azure-web-app", "heroku-app", "netlify-app", "azure-cdn",
                "aws-elastic-beanstalk", "azure-cloudapp-legacy"):
        assert by_key[key].has_https and by_key[key].has_headers
    stealable = {(c.access, c.http_only, c.secure): c.stealable for c in matrix}
    assert stealable[("static-content", False, False)]
    assert not stealable[("static-content", True, False)]
    assert stealable[("full-webserver", True, True)]
