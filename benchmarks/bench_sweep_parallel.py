"""Serial-vs-N-worker sweep throughput (the parallel executor baseline).

One deterministic world is run once per executor variant — the serial
baseline (``workers=1``) and the sharded :class:`ProcessExecutor` at 2
and 4 workers — and the monitor-sweep stage's :class:`PipelineMetrics`
row gives each variant's sweep wall time and FQDN throughput.  Because
fault-free parallel runs merge in shard order, every variant must also
export a byte-identical dataset; the bench asserts it, so the
throughput table doubles as an end-to-end determinism check.

Runs two ways:

* under pytest (``pytest benchmarks/bench_sweep_parallel.py``): the
  laptop-fast small scenario, emitting ``benchmarks/results/``;
* standalone (``python benchmarks/bench_sweep_parallel.py``): the
  paper-scale default scenario (the acceptance run — ≥ 2× sweep
  throughput at 4 workers), or ``--quick`` for the small one.

A second table measures the churn-proportional ``--incremental`` mode:
a full-vs-incremental pair on the low-churn world at one worker (a
single inline shard, isolating the revision journal's clean-skip
savings from fork overhead).  The standalone acceptance gate is ≥ 2×
sweep throughput with a byte-identical export.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import pathlib
import subprocess
import sys
from typing import Dict, List, Optional, Sequence

from repro.core.export import dataset_to_json
from repro.core.reporting import render_table
from repro.core.scenario import ScenarioConfig, run_scenario
from repro.parallel.executor import ProcessExecutor

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Worker counts measured, serial baseline first.
WORKER_COUNTS = (1, 2, 4)


def _config(scale: str, workers: int, weeks: Optional[int],
            incremental: bool = False, low_churn: bool = False) -> ScenarioConfig:
    if scale == "tiny":
        config = ScenarioConfig.tiny()
    elif scale == "small":
        config = ScenarioConfig.small()
    else:
        config = ScenarioConfig()
    if weeks is not None:
        config.weeks = weeks
    config.workers = workers
    config.incremental = incremental
    if low_churn:
        # The churn-proportional acceptance scenario: a quiet world
        # where most weeks most names are provably unchanged.
        config.lifecycle.weekly_release_rate = 0.002
    return config


def run_variant(scale: str, workers: int, weeks: Optional[int],
                incremental: bool = False, low_churn: bool = False) -> Dict:
    """One full scenario run; sweep cost read off the stage metrics."""
    result = run_scenario(
        _config(scale, workers, weeks, incremental=incremental,
                low_churn=low_churn)
    )
    sweep = result.metrics.stage("monitor-sweep")
    executor = result.executor
    cache_hits = cache_misses = 0
    mode = "serial"
    if isinstance(executor, ProcessExecutor):
        cache_hits = executor.extraction_cache.hits
        cache_misses = executor.extraction_cache.misses
        mode = executor.last_mode or "inline"
    # Last week's report: wall is elapsed (max under merge), cpu is
    # summed shard sampling time — the satellite-fixed distinction.
    report = executor.last_report if executor is not None else None
    return {
        "workers": workers,
        "mode": mode,
        "incremental": incremental,
        "wall_s": sweep.wall_time,
        "items": sweep.items_processed,
        "throughput": sweep.items_per_second,
        "cache_hits": cache_hits,
        "cache_misses": cache_misses,
        "last_sweep_wall_s": report.wall_seconds if report is not None else 0.0,
        "last_sweep_cpu_s": report.cpu_seconds if report is not None else 0.0,
        "digest": hashlib.sha256(
            dataset_to_json(result.dataset, indent=2).encode("utf-8")
        ).hexdigest(),
        "weeks": result.weeks_run,
    }


def measure(scale: str, weeks: Optional[int] = None,
            worker_counts: Sequence[int] = WORKER_COUNTS) -> List[Dict]:
    runs = [run_variant(scale, workers, weeks) for workers in worker_counts]
    # Fault-free sharded runs merge deterministically: every worker
    # count must export the byte-identical dataset.
    digests = {run["digest"] for run in runs}
    assert len(digests) == 1, f"export digests diverged across workers: {digests}"
    return runs


def measure_isolated(scale: str, weeks: Optional[int] = None,
                     worker_counts: Sequence[int] = WORKER_COUNTS) -> List[Dict]:
    """Like :func:`measure`, but each variant runs in a fresh interpreter.

    Back-to-back variants in one process are not measured under equal
    conditions: the later runs inherit a grown heap and GC pressure from
    the earlier ones and read 10-20% slower for identical work.  A
    subprocess per variant gives every worker count the same cold start,
    which is what a fair serial-vs-sharded comparison needs.
    """
    script = pathlib.Path(__file__).resolve()
    env = dict(os.environ)
    src = str(script.parents[1] / "src")
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    runs: List[Dict] = []
    for workers in worker_counts:
        cmd = [sys.executable, str(script),
               "--variant", str(workers), "--scale", scale]
        if weeks is not None:
            cmd += ["--weeks", str(weeks)]
        proc = subprocess.run(cmd, capture_output=True, text=True, env=env)
        if proc.returncode != 0:
            raise RuntimeError(
                f"bench variant workers={workers} failed:\n{proc.stderr}"
            )
        runs.append(json.loads(proc.stdout.splitlines()[-1]))
    digests = {run["digest"] for run in runs}
    assert len(digests) == 1, f"export digests diverged across workers: {digests}"
    return runs


def render(runs: List[Dict], scale: str) -> str:
    baseline = runs[0]["throughput"]
    rows = [
        (
            f"{run['workers']} ({run['mode']})",
            run["items"],
            f"{run['wall_s']:.2f}",
            f"{run['throughput']:,.0f}",
            f"{run['throughput'] / baseline:.2f}x" if baseline else "-",
            f"{run.get('last_sweep_cpu_s', 0.0):.3f}/"
            f"{run.get('last_sweep_wall_s', 0.0):.3f}",
            run["cache_hits"],
            run["cache_misses"],
        )
        for run in runs
    ]
    return render_table(
        ["workers", "fqdns swept", "sweep wall s", "fqdn/s", "speedup",
         "last wk cpu/wall s", "cache hits", "cache misses"],
        rows,
        title=(
            f"Sweep throughput, serial vs sharded ({scale} scenario, "
            f"{runs[0]['weeks']} weeks, digests byte-identical)"
        ),
    )


def emit_results(runs: List[Dict], scale: str, out=sys.stdout) -> str:
    table = render(runs, scale)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "sweep_parallel.txt").write_text(table + "\n", encoding="utf-8")
    baseline = runs[0]["throughput"]
    trajectory = {
        "scale": scale,
        "weeks": runs[0]["weeks"],
        "runs": [
            {key: run[key] for key in
             ("workers", "mode", "items", "wall_s", "throughput")}
            for run in runs
        ],
        "speedup_at_max_workers": (
            runs[-1]["throughput"] / baseline if baseline else 0.0
        ),
    }
    (RESULTS_DIR / "sweep_parallel.json").write_text(
        json.dumps(trajectory, indent=2) + "\n", encoding="utf-8"
    )
    print(f"\n=== sweep_parallel ({scale}) ===\n{table}\n", file=out)
    return table


# -- incremental (churn-proportional) variant ------------------------------


def measure_incremental(scale: str, weeks: Optional[int] = None) -> List[Dict]:
    """Full-vs-incremental sweep pair on the low-churn scenario.

    Both runs share the quiet world (0.2%/week release rate) at one
    worker — a single inline shard, so the comparison isolates the
    journal's clean-skip savings from fork overhead.  The incremental
    run must export the byte-identical dataset (only the cost moves).
    """
    pair = [
        run_variant(scale, 1, weeks, incremental=False, low_churn=True),
        run_variant(scale, 1, weeks, incremental=True, low_churn=True),
    ]
    digests = {run["digest"] for run in pair}
    assert len(digests) == 1, f"incremental export diverged from full: {digests}"
    return pair


def measure_incremental_isolated(scale: str,
                                 weeks: Optional[int] = None) -> List[Dict]:
    """The same pair, each run in a fresh interpreter (fair timing)."""
    script = pathlib.Path(__file__).resolve()
    env = dict(os.environ)
    src = str(script.parents[1] / "src")
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    pair: List[Dict] = []
    for incremental in (False, True):
        cmd = [sys.executable, str(script),
               "--variant", "1", "--scale", scale, "--low-churn"]
        if incremental:
            cmd.append("--incremental")
        if weeks is not None:
            cmd += ["--weeks", str(weeks)]
        proc = subprocess.run(cmd, capture_output=True, text=True, env=env)
        if proc.returncode != 0:
            raise RuntimeError(
                f"bench variant incremental={incremental} failed:\n{proc.stderr}"
            )
        pair.append(json.loads(proc.stdout.splitlines()[-1]))
    digests = {run["digest"] for run in pair}
    assert len(digests) == 1, f"incremental export diverged from full: {digests}"
    return pair


def render_incremental(pair: List[Dict], scale: str) -> str:
    baseline = pair[0]["throughput"]
    rows = [
        (
            "incremental" if run["incremental"] else "full fused",
            run["items"],
            f"{run['wall_s']:.2f}",
            f"{run['throughput']:,.0f}",
            f"{run['throughput'] / baseline:.2f}x" if baseline else "-",
        )
        for run in pair
    ]
    return render_table(
        ["sweep mode", "fqdns swept", "sweep wall s", "fqdn/s", "speedup"],
        rows,
        title=(
            f"Churn-proportional sweep, full vs --incremental "
            f"({scale} scenario, low churn, {pair[0]['weeks']} weeks, "
            f"digests byte-identical)"
        ),
    )


def emit_incremental(pair: List[Dict], scale: str, out=sys.stdout) -> str:
    table = render_incremental(pair, scale)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "sweep_incremental.txt").write_text(
        table + "\n", encoding="utf-8"
    )
    baseline = pair[0]["throughput"]
    (RESULTS_DIR / "sweep_incremental.json").write_text(
        json.dumps(
            {
                "scale": scale,
                "weeks": pair[0]["weeks"],
                "runs": [
                    {key: run[key] for key in
                     ("incremental", "items", "wall_s", "throughput")}
                    for run in pair
                ],
                "incremental_speedup": (
                    pair[1]["throughput"] / baseline if baseline else 0.0
                ),
            },
            indent=2,
        ) + "\n",
        encoding="utf-8",
    )
    print(f"\n=== sweep_incremental ({scale}) ===\n{table}\n", file=out)
    return table


# -- pytest entry point ----------------------------------------------------


def test_sweep_parallel_throughput(emit):
    """Small-scale parity + throughput record for the bench trajectory."""
    runs = measure("small")
    emit_results(runs, "small")
    emit("sweep_parallel", render(runs, "small"))
    speedup = runs[-1]["throughput"] / runs[0]["throughput"]
    # The sharded executor must never run slower than the serial
    # baseline; the >= 2x acceptance gate applies to the default-scale
    # standalone run, where steady-state weeks dominate.
    assert speedup >= 1.0, f"4-worker sweep slower than serial: {speedup:.2f}x"
    # The wall/cpu split must be sane on every variant: elapsed wall is
    # never the N-fold shard-sum the old merge bug produced.
    for run in runs:
        assert run["last_sweep_wall_s"] > 0.0 and run["last_sweep_cpu_s"] > 0.0
        if run["mode"] == "serial":
            assert abs(run["last_sweep_wall_s"] - run["last_sweep_cpu_s"]) < 1e-9


def test_sweep_incremental_throughput(emit):
    """Full-vs-incremental parity + throughput on the low-churn world."""
    pair = measure_incremental("small")
    emit_incremental(pair, "small")
    emit("sweep_incremental", render_incremental(pair, "small"))
    speedup = pair[1]["throughput"] / pair[0]["throughput"]
    # In-process conservative floor; the >= 2x acceptance gate applies
    # to the isolated standalone run.
    assert speedup >= 1.5, f"incremental sweep only {speedup:.2f}x full"


# -- standalone entry point ------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="run the laptop-fast small scenario instead "
                             "of the paper-scale default")
    parser.add_argument("--weeks", type=int, default=None,
                        help="override the scenario's week count")
    parser.add_argument("--variant", type=int, default=None,
                        help="internal: run one worker-count variant and "
                             "print its result row as JSON")
    parser.add_argument("--scale", default=None,
                        help="internal: scenario scale for --variant")
    parser.add_argument("--incremental", action="store_true",
                        help="internal: run the --variant with "
                             "churn-proportional sweeps on")
    parser.add_argument("--low-churn", action="store_true",
                        help="internal: run the --variant on the quiet "
                             "(0.2%%/week release) world")
    args = parser.parse_args(argv)
    if args.variant is not None:
        run = run_variant(args.scale or "full", args.variant, args.weeks,
                          incremental=args.incremental,
                          low_churn=args.low_churn)
        print(json.dumps(run))
        return 0
    scale = "small" if args.quick else "full"
    runs = measure_isolated(scale, weeks=args.weeks)
    emit_results(runs, scale)
    speedup = runs[-1]["throughput"] / runs[0]["throughput"]
    floor = 1.0 if args.quick else 2.0
    if speedup < floor:
        print(f"FAIL: speedup {speedup:.2f}x below the {floor:.1f}x floor",
              file=sys.stderr)
        return 1
    print(f"speedup at {runs[-1]['workers']} workers: {speedup:.2f}x")
    pair = measure_incremental_isolated(scale, weeks=args.weeks)
    emit_incremental(pair, scale)
    inc_speedup = pair[1]["throughput"] / pair[0]["throughput"]
    inc_floor = 1.5 if args.quick else 2.0
    if inc_speedup < inc_floor:
        print(f"FAIL: incremental sweep {inc_speedup:.2f}x below the "
              f"{inc_floor:.1f}x floor", file=sys.stderr)
        return 1
    print(f"incremental sweep speedup (low churn): {inc_speedup:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
