"""Figure 6: histogram of HTML files uploaded per abused site.

Paper: 2 to 144,349 files per site, average 31,810, ~500M files /
~24 TB in total.  The simulated world is ~50x smaller in monitored
FQDNs; page counts are drawn from the same heavy-tailed (lognormal)
shape at a reduced scale.
"""

from repro.core.abuse_volume import analyze_volume
from repro.core.reporting import render_histogram, render_table


def test_upload_volume(paper, benchmark, emit):
    report = benchmark(analyze_volume, paper.dataset)
    emit(
        "fig06_upload_volume",
        render_table(
            ["statistic", "value"],
            [
                ("sites with bulk sitemaps", report.sites_with_sitemaps),
                ("min files/site (paper 2)", report.min_files),
                ("max files/site (paper 144,349)", report.max_files),
                ("mean files/site (paper 31,810)", round(report.average_files, 1)),
                ("total files (paper ~492M)", report.total_files),
                ("est. total kB (paper ~25.8e9)", round(report.estimated_total_kb)),
            ],
            title="Figure 6 — upload volume per hijacked site",
        )
        + "\n\n"
        + render_histogram(report.histogram(bin_size=500), title="sites per file-count bin"),
    )
    # Heavy tail: the max dwarfs the median; most sites still have
    # thousands of pages.
    assert report.min_files >= 2
    assert report.max_files > report.average_files * 3
    counts = report.per_site_counts
    median = counts[len(counts) // 2]
    assert median >= 100
