"""Table 1: top keywords classifying abusive index pages.

Paper: the top extracted keywords are Indonesian gambling terms and
adult vocabulary ("sex", "daftar", "situs judi", "gacor", ...).
"""

from repro.content.vocab import ADULT_KEYWORDS, GAMBLING_KEYWORDS
from repro.core.reporting import render_table
from repro.core.seo_analysis import table1_index_keywords


def test_top_index_keywords(paper, benchmark, emit):
    rows = benchmark(table1_index_keywords, paper.dataset, 12)
    emit(
        "tab01_index_keywords",
        render_table(
            ["#", "keyword", "count"],
            [(i + 1, kw, count) for i, (kw, count) in enumerate(rows)],
            title="Table 1 — top keywords on abusive index pages",
        ),
    )
    assert len(rows) == 12
    gambling_tokens = set()
    for phrase in GAMBLING_KEYWORDS:
        gambling_tokens.update(phrase.split())
    adult_tokens = set(ADULT_KEYWORDS)
    vocabulary_hits = sum(
        1 for kw, _ in rows
        if set(kw.split()) & (gambling_tokens | adult_tokens)
    )
    assert vocabulary_hits >= 6  # gambling/adult terms dominate
    # Template snippets rank high, as in the paper's Table 1.
    assert any(kw.startswith("HTML Snippet") for kw, _ in rows)
    counts = [count for _, count in rows]
    assert counts == sorted(counts, reverse=True)
