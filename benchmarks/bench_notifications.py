"""Notification-campaign ablation (Section 1's "Ethics and notifications").

The paper notified 300+ organizations, which confirmed the hijacks.
Here the campaign's *effect* is measured: the same seeded world run
with and without notifications, comparing abuse lifetimes.
"""

import pytest

from repro.core.duration import analyze_durations
from repro.core.reporting import percent, render_table
from repro.core.scenario import ScenarioConfig, run_scenario


@pytest.fixture(scope="module")
def notification_runs():
    silent = run_scenario(ScenarioConfig.small(seed=29))
    config = ScenarioConfig.small(seed=29)
    config.notify_owners = True
    notified = run_scenario(config)
    return silent, notified


def test_notification_campaign_effect(notification_runs, benchmark, emit):
    silent, notified = notification_runs
    silent_durations = analyze_durations(silent.dataset, silent.end)
    notified_durations = benchmark(analyze_durations, notified.dataset, notified.end)
    campaign = notified.notifications
    mean_silent = sum(silent_durations.durations_days) / silent_durations.total
    mean_notified = sum(notified_durations.durations_days) / notified_durations.total
    emit(
        "notification_campaign",
        render_table(
            ["world", "episodes", "mean duration (d)", "> 65 days"],
            [
                ("no notifications", silent_durations.total, round(mean_silent, 1),
                 percent(silent_durations.long_lived_share)),
                ("with notifications", notified_durations.total, round(mean_notified, 1),
                 percent(notified_durations.long_lived_share)),
            ],
            title=(
                f"Notification ablation — {len(campaign.sent)} notifications to "
                f"{campaign.notified_organizations} orgs, "
                f"{percent(campaign.confirmation_rate)} confirmed (paper: 300+, all confirmed)"
            ),
        ),
    )
    assert campaign.confirmation_rate > 0.8
    assert mean_notified < mean_silent
