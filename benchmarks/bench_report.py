"""Report-engine benchmark: the old serial report vs the task-graph engine.

``python -m repro report`` used to run every Section 4–6 analysis
strictly serially, with Figure 27's ``cooccurrence_edges`` computed by
an O(n²) all-pairs scan over the identifier map.  The rework runs the
analyses as a task graph on a forked pool and walks co-occurrence
through the per-domain postings index instead — O(co-occurring pairs).

The simulated world underproduces attacker identifiers relative to the
real measurement (the paper extracts ~31.5k phone numbers, social
handles, short links and backend IPs; a tiny sim run yields a few
hundred), so the n² term is invisible at sim scale.  This benchmark
therefore grafts a paper-magnitude synthetic identifier map onto a real
finished scenario — the ``identifiers`` task returns the synthetic map,
and everything downstream (clustering, co-occurrence, every renderer)
runs the production path over it.

Baseline = serial engine + the retained ``cooccurrence_edges_naive``
scan (the pre-rework report).  Candidate = forked pool + postings
walk.  The two must agree byte-for-byte: the bench asserts identical
edge lists and identical rendered reports, so the speedup table doubles
as a parity check.

Runs two ways:

* under pytest (``pytest benchmarks/bench_report.py``): a reduced
  workload with a conservative ≥ 1.3× floor, emitting
  ``benchmarks/results/report_engine.txt``;
* standalone (``python benchmarks/bench_report.py``): the paper-scale
  acceptance run — ≥ 2× report wall-clock — or ``--quick`` for the
  reduced workload.
"""

from __future__ import annotations

import argparse
import dataclasses
import pathlib
import random
import sys
import time
from typing import Dict, List

from repro.analysis import AnalysisRegistry, default_tasks, run_analyses
from repro.core.clustering import cooccurrence_edges, cooccurrence_edges_naive
from repro.core.identifiers import IdentifierMap
from repro.core.paper_report import build_report
from repro.core.reporting import render_table
from repro.core.scenario import ScenarioConfig, run_scenario

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Paper-magnitude identifier workload (standalone acceptance).  The
#: real measurement clusters ~31.5k identifiers; 8k keeps the O(n²)
#: baseline scan to tens of seconds while leaving the quadratic term
#: unmistakable.
PAPER_SCALE = dict(n_identifiers=8_000, n_campaigns=260, weeks=60)
#: Reduced workload for per-PR CI.
QUICK_SCALE = dict(n_identifiers=1_600, n_campaigns=60, weeks=16)

#: Report wall-clock gates (baseline wall / engine wall).
PAPER_GATE = 2.0
QUICK_GATE = 1.3

#: Pool width for the candidate run (the engine merges in registry
#: order, so any width is byte-identical).
WORKERS = 4


def build_identifier_map(rng: random.Random, n_identifiers: int,
                         n_campaigns: int) -> IdentifierMap:
    """A paper-shaped identifier map: campaign-clustered domain sharing.

    Identifiers belong to campaigns and draw their domains from the
    campaign's pool, reproducing the paper's structure — a long tail of
    small clusters plus dense shared cores — while keeping co-occurring
    pairs sparse enough that only the all-pairs baseline goes quadratic.
    """
    imap = IdentifierMap()
    buckets = [imap.phones, imap.socials, imap.short_links, imap.ips]
    pools = [
        [f"c{campaign:04d}-{i:03d}.victim.example.com" for i in range(30)]
        for campaign in range(n_campaigns)
    ]
    for serial in range(n_identifiers):
        campaign = rng.randrange(n_campaigns)
        domains = set(rng.sample(pools[campaign], rng.randint(1, 4)))
        bucket = buckets[serial % len(buckets)]
        bucket[f"ident-{serial:06d}"] = domains
    return imap


def bench_registry(synthetic_map: IdentifierMap, naive: bool) -> AnalysisRegistry:
    """The default registry with the identifier workload grafted in.

    ``naive=True`` additionally swaps the co-occurrence task back to
    the pre-rework all-pairs scan (the baseline under test).
    """

    def _synthetic_identifiers(result, deps):
        return synthetic_map

    def _naive_cooccurrence(result, deps):
        return cooccurrence_edges_naive(deps["identifiers"])

    tasks = []
    for task in default_tasks():
        if task.name == "identifiers":
            tasks.append(dataclasses.replace(task, run=_synthetic_identifiers))
        elif task.name == "cooccurrence" and naive:
            tasks.append(dataclasses.replace(task, run=_naive_cooccurrence))
        else:
            tasks.append(task)
    return AnalysisRegistry(tasks)


def run_variant(result, synthetic_map: IdentifierMap, *, naive: bool,
                workers: int) -> Dict:
    started = time.perf_counter()
    run = run_analyses(
        result, registry=bench_registry(synthetic_map, naive=naive),
        workers=workers,
    )
    report = build_report(result, run=run)
    wall = time.perf_counter() - started
    assert not run.failed, [outcome.error for outcome in run.failed]
    return {
        "path": "serial+naive-edges" if naive else f"pool[{workers}]+postings",
        "wall_s": wall,
        "edges": run.payload("cooccurrence"),
        "report": report,
    }


def measure(n_identifiers: int, n_campaigns: int, weeks: int,
            seed: int = 11) -> List[Dict]:
    synthetic_map = build_identifier_map(
        random.Random(seed), n_identifiers, n_campaigns
    )
    config = ScenarioConfig.tiny(seed=seed)
    config.weeks = weeks
    result = run_scenario(config)
    baseline = run_variant(result, synthetic_map, naive=True, workers=1)
    engine = run_variant(result, synthetic_map, naive=False, workers=WORKERS)
    # Parity is the contract: the postings walk must emit the byte-same
    # edge list as the all-pairs scan, and the pooled report must be
    # byte-identical to the serial baseline's rendering.
    assert engine["edges"] == baseline["edges"], \
        "postings co-occurrence diverged from the all-pairs scan"
    assert engine["report"] == baseline["report"], \
        "pooled report diverged from the serial baseline"
    # Sanity: the grafted workload is actually paper-shaped.
    assert len(cooccurrence_edges(synthetic_map)) > n_identifiers / 4
    return [baseline, engine]


def _speedup(runs: List[Dict]) -> float:
    baseline, engine = runs
    return baseline["wall_s"] / max(engine["wall_s"], 1e-9)


def render(runs: List[Dict], scale_label: str) -> str:
    rows = [
        (run["path"], f"{run['wall_s']:.3f}", len(run["edges"]))
        for run in runs
    ]
    rows.append(
        ("speedup (baseline/engine)", f"{_speedup(runs):.2f}x", "-")
    )
    return render_table(
        ["path", "report wall s", "fig27 edges"],
        rows,
        title=f"Report engine cost, {scale_label} "
              "(full build_report; edge lists and reports must agree)",
    )


def test_report_engine_speedup(emit):
    runs = measure(**QUICK_SCALE)
    emit("report_engine", render(runs, "quick scale"))
    speedup = _speedup(runs)
    assert speedup >= QUICK_GATE, (
        f"analysis engine only {speedup:.2f}x over the serial baseline "
        f"(floor {QUICK_GATE}x at quick scale)"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced workload (CI smoke)")
    args = parser.parse_args(argv)
    scale = QUICK_SCALE if args.quick else PAPER_SCALE
    gate = QUICK_GATE if args.quick else PAPER_GATE
    label = "quick scale" if args.quick else "paper scale"
    runs = measure(**scale)
    table = render(runs, label)
    print(table)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "report_engine.txt").write_text(table + "\n", encoding="utf-8")
    speedup = _speedup(runs)
    if speedup < gate:
        print(f"FAIL: {speedup:.2f}x < required {gate}x at {label}",
              file=sys.stderr)
        return 1
    print(f"OK: {speedup:.2f}x >= {gate}x at {label}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
