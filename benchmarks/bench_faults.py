"""Chaos-run benchmarks: retry overhead and degradation accounting.

Not a paper artifact — measures what the resilience layer costs and
buys.  One tiny world is run three ways (healthy; chaos without
retries; chaos with the standard retry budget) and the emitted table
compares samples, injected faults, client retries, simulated backoff,
quarantined FQDNs and wall time, so a regression in either direction —
retries getting expensive, or degradation silently recording phantom
states — shows up in ``benchmarks/results/``.
"""

import time

from repro.core.export import dataset_to_json
from repro.core.reporting import render_table
from repro.core.scenario import ScenarioConfig, run_scenario
from repro.faults.plan import FaultConfig
from repro.faults.retry import RetryPolicy

WEEKS = 16
FAULT_SEED = 2024
LEVEL = 0.08


def _config(chaos: bool, retries: int) -> ScenarioConfig:
    config = ScenarioConfig.tiny()
    config.weeks = WEEKS
    if chaos:
        config.faults = FaultConfig.chaos(LEVEL, seed=FAULT_SEED)
    if retries > 1:
        config.monitor.retry = RetryPolicy.standard(retries)
    return config


def _run(chaos: bool, retries: int):
    started = time.perf_counter()
    result = run_scenario(_config(chaos, retries))
    wall = time.perf_counter() - started
    client = result.internet.client
    return {
        "result": result,
        "wall_s": wall,
        "samples": result.monitor.samples_taken,
        "injected": result.fault_plan.stats.total if result.fault_plan else 0,
        "retries": client.retries_total,
        "backoff_s": client.backoff_seconds_total,
        "quarantined": len(result.dead_letters),
        "detected": len(result.dataset),
    }


def test_retry_overhead_and_degradation(emit):
    healthy = _run(chaos=False, retries=1)
    storm = _run(chaos=True, retries=1)
    resilient = _run(chaos=True, retries=3)

    # The storm actually happened, and retries strictly reduce the
    # number of FQDNs that ended the week in quarantine.
    assert storm["injected"] > 0
    assert resilient["retries"] > 0
    assert resilient["quarantined"] <= storm["quarantined"]
    # Retries cost extra samples' worth of fetches, not unbounded work.
    assert resilient["retries"] <= 3 * resilient["samples"]
    # Chaos never escapes the engine: all three ran to completion.
    for run in (healthy, storm, resilient):
        assert run["result"].weeks_run == WEEKS

    # Same fault seed replays the same storm deterministically.
    replay = _run(chaos=True, retries=3)
    assert dataset_to_json(replay["result"].dataset) == dataset_to_json(
        resilient["result"].dataset
    )
    assert replay["retries"] == resilient["retries"]
    assert replay["result"].dead_letters == resilient["result"].dead_letters

    rows = [
        (
            label,
            run["samples"],
            run["injected"],
            run["retries"],
            f"{run['backoff_s']:.0f}",
            run["quarantined"],
            run["detected"],
            f"{run['wall_s']:.2f}",
        )
        for label, run in (
            ("healthy", healthy),
            (f"chaos {LEVEL:.0%}, no retries", storm),
            (f"chaos {LEVEL:.0%}, 3 attempts", resilient),
        )
    ]
    emit(
        "fault_injection_overhead",
        render_table(
            ["run", "samples", "injected", "retries", "backoff sim s",
             "quarantined", "detected", "wall s"],
            rows,
            title=f"Chaos-run overhead (tiny, {WEEKS} weeks, fault seed {FAULT_SEED})",
        ),
    )
