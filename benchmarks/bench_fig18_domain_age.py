"""Figure 18 + Section 5.2.3: WHOIS age of abused SLDs, TLS, HSTS.

Paper: 98.51% of hijacked SLDs are older than a year, the vast majority
over a decade — attackers select for inherited reputation; 18.2% of
abused (sub)domains had valid certificates; >16% of parents send HSTS.
"""

from repro.core.reporting import percent, render_histogram, render_table
from repro.core.reputation import analyze_reputation


def test_domain_age_distribution(paper, benchmark, emit):
    report = benchmark.pedantic(
        analyze_reputation,
        args=(paper.dataset, paper.internet.whois, paper.internet.ct_log,
              paper.internet.client, paper.end),
        rounds=3, iterations=1,
    )
    emit(
        "fig18_domain_age",
        render_histogram(report.age_histogram(), title="Figure 18 — WHOIS age of abused SLDs (years)")
        + "\n\n"
        + render_table(
            ["statistic", "value", "paper"],
            [
                ("older than 1 year", percent(report.older_than_year_share), "98.51%"),
                ("older than a decade", percent(report.older_than_decade_share), "majority"),
                ("abused FQDNs with certificates", percent(report.certified_share), "18.2%"),
                ("parents sending HSTS", percent(report.hsts_parent_share), ">16%"),
            ],
        ),
    )
    assert report.older_than_year_share > 0.9
    assert report.older_than_decade_share > 0.4
    assert 0.05 < report.certified_share < 0.5
    assert 0.03 < report.hsts_parent_share < 0.5
