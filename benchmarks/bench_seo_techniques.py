"""Section 5.2: the SEO technique mix on hijacked sites.

Paper: 75% of abusive samples contain blackhat SEO; of the SEO sites,
62.13% use doorway pages, 7.17% private link networks / the Japanese
Keyword Hack; clickjacking appears on adult pages.
"""

from repro.core.reporting import percent, render_table
from repro.core.seo_analysis import analyze_seo


def test_seo_technique_mix(paper, benchmark, emit):
    report = benchmark.pedantic(
        analyze_seo,
        args=(paper.dataset, paper.monitor.store, paper.internet.client, paper.end),
        rounds=3, iterations=1,
    )
    cloaking = sum(1 for p in report.profiles if p.cloaking)
    emit(
        "section52_seo_techniques",
        render_table(
            ["technique", "value", "paper"],
            [
                ("sites with any SEO", percent(report.seo_share), "75%"),
                ("doorway pages (of SEO sites)", percent(report.doorway_share), "62.13%"),
                ("link networks / JKH (of SEO sites)", percent(report.jkh_share), "7.17%"),
                ("keyword stuffing (of pages)", percent(report.keyword_stuffing_page_rate), "41%"),
                ("clickjacking sites", report.clickjacking_sites, "adult subset"),
                ("cloaking sites observed", cloaking, "JKH subset"),
                ("referral codes seen", len(report.referral_codes), "Figure 24"),
            ],
            title="Section 5.2 — SEO techniques on hijacked sites",
        ),
    )
    assert 0.6 < report.seo_share <= 1.0
    assert 0.4 < report.doorway_share < 0.95
    assert report.jkh_share < 0.35
    assert report.clickjacking_sites > 0
    assert report.referral_codes  # the monetization trail exists
