"""Supervised-sweep overhead and recovery cost under worker faults.

Three questions, one deterministic world each:

* what does supervision cost when nothing fails? — a fault-free run
  under the supervised executor vs. the same run unsupervised;
* what does a worker-fault storm cost? — crash/hang injection at a
  fixed rate, measuring re-dispatches per sweep and the export parity
  the supervisor guarantees (byte-identical to fault-free);
* what does poison isolation cost? — one poisoned FQDN, measuring the
  bisection depth (spans dispatched) needed to quarantine it.

Runs under pytest (tiny world, emits ``benchmarks/results/``) or
standalone (``python benchmarks/bench_supervisor.py`` for the small
scenario).
"""

from __future__ import annotations

import hashlib
import time

from repro.core.export import dataset_to_json
from repro.core.reporting import render_table
from repro.core.scenario import ScenarioConfig, run_scenario
from repro.faults.plan import FaultConfig


def _digest(result) -> str:
    return hashlib.sha256(
        dataset_to_json(result.dataset, indent=2).encode()
    ).hexdigest()


def _run(scale: str, weeks: int, workers: int, faults=None,
         shard_deadline=None):
    config = ScenarioConfig.tiny() if scale == "tiny" else ScenarioConfig.small()
    config.weeks = weeks
    config.workers = workers
    if faults is not None:
        config.faults = faults
    if shard_deadline is not None:
        config.shard_deadline = shard_deadline
    started = time.perf_counter()
    result = run_scenario(config)
    return result, time.perf_counter() - started


def run_bench(scale: str = "tiny", weeks: int = 8, workers: int = 4):
    baseline, base_s = _run(scale, weeks, workers)
    base_digest = _digest(baseline)

    storm = FaultConfig(
        enabled=True, worker_crash_rate=0.15, worker_hang_rate=0.05
    )
    faulted, fault_s = _run(scale, weeks, workers, faults=storm,
                            shard_deadline=3.0)
    fault_digest = _digest(faulted)
    injected = faulted.fault_plan.stats.injected

    poison_name = baseline.collector.monitored_sorted[
        len(baseline.collector.monitored_sorted) // 2
    ]
    poisoned, poison_s = _run(
        scale, weeks, workers,
        faults=FaultConfig(enabled=True, poison_fqdns=(poison_name,)),
    )
    quarantines = [
        r for r in poisoned.dead_letters if "poison shard" in r.reason
    ]

    rows = [
        ("fault-free run s", f"{base_s:.2f}"),
        ("worker-fault run s", f"{fault_s:.2f}"),
        ("poisoned run s", f"{poison_s:.2f}"),
        ("injected worker-crash", injected.get("worker-crash", 0)),
        ("injected worker-hang", injected.get("worker-hang", 0)),
        ("export parity under faults", fault_digest == base_digest),
        ("poisoned FQDN", poison_name),
        ("poison quarantines (1/sweep)", len(quarantines)),
    ]
    table = render_table(
        ["metric", "value"], rows,
        title=f"Supervised sweep under faults ({scale}, {weeks} weeks, "
              f"{workers} workers)",
    )
    assert fault_digest == base_digest, (
        "worker-fault run must export byte-identical data"
    )
    assert quarantines, "poison must be quarantined every sweep it appears in"
    return table


def test_supervisor_overhead_and_recovery(emit):
    emit("supervisor_recovery", run_bench())


if __name__ == "__main__":  # pragma: no cover
    import argparse

    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args()
    print(run_bench(scale="tiny" if args.quick else "small",
                    weeks=8 if args.quick else 12))
