"""Figure 3: content classification on hijacked domains.

Paper: gambling and adult content dominate, with the Japanese Keyword
Hack at ~1% and a long tail of other spam.
"""

from repro.core.detection import topic_breakdown
from repro.core.reporting import percent, render_table


def test_topic_distribution(paper, benchmark, emit):
    rows = benchmark(topic_breakdown, paper.dataset)
    emit(
        "fig03_topics",
        render_table(
            ["topic", "domains", "share"],
            [(label, count, percent(share)) for label, count, share in rows],
            title="Figure 3 — content classification on hijacked domains",
        ),
    )
    shares = {label: share for label, _, share in rows}
    assert shares.get("gambling", 0) > 0.4  # dominant topic
    assert shares.get("gambling", 0) > shares.get("adult", 0)
    assert shares.get("japanese-seo", 0) < 0.1  # rare, as in the paper
