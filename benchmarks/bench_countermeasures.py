"""Section 7 countermeasure ablations (reproduction extension).

The paper *recommends* randomized resource names and quarantining
released names; the simulator measures them: either intervention
should collapse the takeover count versus the unmodified world.
"""

from datetime import timedelta

import pytest

from repro.core.reporting import render_table
from repro.core.scenario import ScenarioConfig, run_scenario


@pytest.fixture(scope="module")
def ablation_runs():
    baseline = run_scenario(ScenarioConfig.small(seed=17))
    randomized_config = ScenarioConfig.small(seed=17)
    randomized_config.randomize_names = True
    randomized = run_scenario(randomized_config)
    cooldown_config = ScenarioConfig.small(seed=17)
    cooldown_config.reregistration_cooldown = timedelta(days=365)
    quarantined = run_scenario(cooldown_config)
    return baseline, randomized, quarantined


def test_countermeasure_ablation(ablation_runs, benchmark, emit):
    baseline, randomized, quarantined = ablation_runs
    rows = [
        ("none (baseline)", len(baseline.ground_truth), len(baseline.dataset)),
        ("randomized resource names", len(randomized.ground_truth), len(randomized.dataset)),
        ("1-year re-registration quarantine", len(quarantined.ground_truth),
         len(quarantined.dataset)),
    ]
    emit(
        "section7_countermeasures",
        render_table(
            ["countermeasure", "actual takeovers", "detected abuses"],
            rows,
            title="Section 7 — countermeasure ablation (1-year worlds, same seed)",
        ),
    )
    benchmark.pedantic(
        run_scenario, args=(ScenarioConfig.tiny(seed=17),), rounds=1, iterations=1
    )
    assert len(baseline.ground_truth) > 10
    assert len(randomized.ground_truth) == 0
    assert len(quarantined.ground_truth) < len(baseline.ground_truth) * 0.3
