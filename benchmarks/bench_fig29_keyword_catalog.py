"""Figure 29 / Section 3.2's keyword corpus.

Paper: 56,946 keywords extracted (average 2.72 per classified page),
spanning Indonesian gambling terms, adult vocabulary, maintenance-page
fragments in many languages, and attacker code fragments.
"""

from collections import Counter

from repro.core.keywords import topic_scores
from repro.content.vocab import Topic
from repro.core.reporting import render_table


def test_keyword_catalog(paper, benchmark, emit):
    def build_catalog():
        counter = Counter()
        for record in paper.dataset.records():
            counter.update(record.keywords)
        return counter

    catalog = benchmark(build_catalog)
    per_record = (
        sum(len(r.keywords) for r in paper.dataset.records()) / len(paper.dataset)
    )
    rows = catalog.most_common(60)
    emit(
        "fig29_keyword_catalog",
        render_table(
            ["keyword", "pages"],
            rows,
            title=(
                f"Figure 29 — extracted keyword corpus "
                f"({len(catalog)} distinct keywords, "
                f"{per_record:.1f} per abused FQDN; paper: 56,946 / 2.72)"
            ),
        ),
    )
    assert len(catalog) > 100  # a real corpus, not a handful of terms
    # The corpus is multi-topic: gambling AND adult vocabulary present.
    scores = topic_scores(catalog.keys())
    assert scores[Topic.GAMBLING] >= 5
    assert scores[Topic.ADULT] >= 3
